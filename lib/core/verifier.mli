(** The DIALED verifier (Vrf): token checking plus abstract execution.

    Given a PoX report, Vrf (i) checks the HMAC token against the expected
    instrumented binary, (ii) {e replays} the operation in a sandboxed CPU,
    feeding every peripheral read from the authenticated I-Log and checking
    every log append the replay produces against the received log, and
    (iii) runs detectors over the reconstructed execution:

    - {b log divergence} — the replay and the device disagree on any log
      entry (unexplained input, forged entry, desynchronized control flow);
    - {b shadow call stack} — a return landed somewhere other than its
      call site (the Fig. 1 control-flow attack), or executed with no
      matching call at all (a forged return frame);
    - {b out-of-bounds accesses} — a store/load through an array whose
      effective address leaves the object's bounds, using the compiler's
      annotations (the Fig. 2 data-only attack);
    - {b user policies} — application predicates over the full trace
      (actuation limits, dosage rules, ...).

    Acceptance means: the token is genuine, EXEC = 1, the replay
    reconstructs the execution exactly, and no detector fired.

    {2 Verification plans}

    All per-firmware invariants — the assembled image, the expected ER
    bytes, the resolved annotation table, entry and exit addresses — live
    in an immutable {!plan} built once per {!Pipeline.built}. A plan is
    safe to share across OCaml 5 domains: {!verify_plan} allocates all
    mutable replay state (memory image, CPU, shadow stack) per call, so a
    fleet verifier can replay many reports against one plan in parallel
    (see [Dialed_fleet.Fleet]). {!create}/{!verify} remain as thin
    single-session wrappers. *)

type finding =
  | Bad_instrumentation of string
      (** the plan's static audit rejected the binary itself — no report
          over it is ever accepted (see {!Dialed_staticcheck.Audit}) *)
  | Bad_token of string
  | Wrong_layout of string
  | Log_divergence of {
      step : int; pc : int; addr : int;
      device_value : int; replay_value : int;
    }
  | Replay_failed of string
  | Shadow_stack_violation of { pc : int; expected : int option; actual : int }
      (** [expected = None]: the return executed with an empty shadow
          stack — no call frame to match (a return-into-the-operation). *)
  | Oob_access of {
      pc : int; kind : [ `Read | `Write ];
      array : string; ea : int; lo : int; hi : int;
    }
  | Policy_violation of { policy : string; reason : string }

val finding_kind : finding -> string
(** Stable short tag for a finding's constructor ("bad-token",
    "log-divergence", "shadow-stack", ...) — the key the fleet metrics
    aggregate rejects under. *)

val pp_finding : Format.formatter -> finding -> unit

type step = {
  s_index : int;
  s_pc : int;
  s_instr : Dialed_msp430.Isa.instr option;
  (** [None] when the step retired no instruction: interrupt vectoring,
      or a fetch that hit an invalid opcode. *)
  s_pc_after : int;
  s_accesses : Dialed_msp430.Memory.access list;
}

type trace = {
  steps : step list;              (** chronological; [[]] when the replay
                                      ran with [keep_trace:false] *)
  step_count : int;               (** steps actually replayed, regardless
                                      of retention *)
  cf_dests : int list;            (** CF-Log entries, in order *)
  inputs : int list;              (** I-Log entries, in order *)
  final_r4 : int;
  replay_memory : Dialed_msp430.Memory.t;  (** post-replay state *)
}

type policy = {
  policy_name : string;
  check : trace -> (unit, string) result;
}

type outcome = {
  accepted : bool;
  findings : finding list;
  trace : trace option;   (** present when the replay ran to completion *)
}

type plan
(** Immutable per-firmware verification invariants; safe to share across
    domains. Holds the device key, the expected build, the annotation
    table resolved to concrete addresses, and the policy list. *)

val plan :
  ?key:string -> ?policies:policy list -> ?max_steps:int ->
  ?decode_cache:bool -> ?audit:Dialed_staticcheck.Audit.config ->
  Pipeline.built -> plan
(** Build a plan from a [Full]-variant build (raises [Invalid_argument]
    otherwise). Resolving annotation expressions happens here, once, so
    {!verify_plan}'s replay loop is lookup-only. So does predecoding: by
    default the plan carries a {!Dialed_msp430.Decode_cache} over the
    executable region — built once, shared read-only by every replay (and
    every domain) — giving the replay CPU a fetchless fast path. Pass
    [~decode_cache:false] to force byte-level fetch + decode on every
    step (the reference path; verdicts are identical either way, which
    [test_replay_equiv] pins).

    [audit] arms the static gating stage: the binary-level auditor runs
    once here, at plan-build time, and its report rides in the plan.
    Every subsequent {!verify_plan} call rejects up front — before even
    looking at the token — when the audit found the instrumentation
    broken. Omitting [audit] skips the stage entirely — except for a
    {e selective} build ({!Pipeline.built.selective}), where the audit
    (including its dataflow pass) is a hard precondition of the reduced
    discipline and always runs, against the build's own
    [critical_ranges]. *)

val plan_audit : plan -> Dialed_staticcheck.Report.t option
(** The audit report captured at plan-build time, when [audit] was
    given. *)

val plan_memo_ns : plan -> string
(** The plan's memoization namespace, fixed at build time: a digest of
    everything a {e replay} verdict depends on beyond the log itself —
    the build fingerprint (image, layout, annotations), [max_steps], and
    the key (conservatively; it only affects the uncached token check).
    Two plans with equal namespaces produce identical {!replay_outcome}s
    for equal {!log_digest}s, so a verdict cache may key entries by
    [(plan_memo_ns, log_digest)]. A plan carrying policies gets a unique
    namespace — policy closures are opaque, so such plans never share
    cached verdicts. [decode_cache] is excluded: verdicts are pinned
    identical either way. *)

val log_digest : Dialed_apex.Pox.report -> string
(** Canonical digest (raw SHA-256 bytes) of the report material the
    replay consumes: the five claimed layout words plus the OR bytes.
    The challenge, token, and EXEC byte are {e excluded} — they are
    per-session authenticity material checked by {!precheck}, never by
    the replay. [Dialed_apex.Wire.decode_digested] computes the same
    digest incrementally during wire decode. *)

val effective_audit_config :
  ?config:Dialed_staticcheck.Audit.config ->
  Pipeline.built -> Dialed_staticcheck.Audit.config
(** The configuration a build must be audited against: for a selective
    build, [config] with [selective] forced to the build's resolved
    critical ranges; otherwise [config] unchanged (default
    {!Dialed_staticcheck.Audit.default_config}). *)

val audit_built :
  ?config:Dialed_staticcheck.Audit.config ->
  Pipeline.built -> Dialed_staticcheck.Report.t
(** Run the static auditor over an assembled build without building a
    plan: loads the image into a scratch memory and audits the ER range
    from its bytes alone (always via {!effective_audit_config}). Works on
    any variant — auditing a [Cfa_only]/[Unmodified] build is exactly how
    one demonstrates what the auditor rejects. *)

val audit_built_timed :
  ?config:Dialed_staticcheck.Audit.config ->
  Pipeline.built ->
  Dialed_staticcheck.Report.t * Dialed_staticcheck.Audit.timings
(** {!audit_built} plus the per-pass wall-clock breakdown
    (scan / register discipline / footprint / dataflow microseconds) —
    what the lint bench reports. *)

type scratch
(** A reusable replay arena: one 64 KiB sandbox {!Dialed_msp430.Memory}
    (with its attached oracle and decode-cache dirty map), one CPU, and
    the oracle's pairing state, reused across reports instead of being
    allocated per call. The arena binds lazily to whichever plan it is
    used with (rebinding on a plan change) and resets between reports by
    restoring only the pages the previous replay dirtied
    ({!Dialed_msp430.Memory.reset_to_snapshot}).

    A scratch belongs to one domain: sharing it across concurrent
    {!verify_plan} calls is a data race. Verdicts are bit-identical to
    the fresh-memory path — [test_adversarial] pins this over the
    tampered-report corpus. *)

val scratch : unit -> scratch
(** An unbound arena; the first {!verify_plan} call that receives it
    pays the one-time image load + snapshot. *)

val verify_plan :
  ?keep_trace:bool -> ?scratch:scratch -> plan ->
  Dialed_apex.Pox.report -> outcome
(** Replay one report against a shared plan. Without [scratch],
    allocates all mutable state locally — concurrent calls on the same
    plan are safe.

    [keep_trace] (default [true]) controls retention of the per-step
    {!step} list. With [~keep_trace:false] the replay still runs every
    detector but materializes no step records — [trace.steps] is empty
    while [trace.step_count] still counts — cutting the dominant
    allocation on the fleet path. Forced on when the plan carries
    policies, which inspect [trace.steps].

    [scratch] reuses the given arena for the replay sandbox. The
    returned [trace.replay_memory] then aliases the arena and is only
    valid until the arena's next use; policies (which run before
    returning) are unaffected.

    [verify_plan] is exactly {!precheck} followed (on [Ok]) by
    {!replay_outcome}; the split exists so a memoizing caller can run
    the per-session half on every report while caching the replay
    half. *)

val precheck :
  plan -> Dialed_apex.Pox.report -> (unit, finding) result
(** Stages 0–2 of verification: static-audit gate, layout consistency,
    token + EXEC. Everything that depends on per-session material (the
    challenge-bound token) and nothing that replays the log. A caller
    memoizing replay verdicts must run this on {e every} report — hit or
    miss — so a stale or forged token can never ride a cached verdict.
    [Error f] verdicts from here are never sound to cache by log digest:
    they depend on challenge/nonce material, not the log. *)

val replay_outcome :
  ?keep_trace:bool -> ?scratch:scratch -> plan ->
  Dialed_apex.Pox.report -> outcome
(** Stages 3–4: the abstract-execution replay plus policies, including
    the malformed-report catch ([Invalid_argument] from the log view
    becomes a [Replay_failed] finding). A pure function of
    [(plan, log_digest report)] — both acceptance and rejection — which
    is what makes its verdicts memoizable. Callers must have passed
    {!precheck} first; skipping it skips authenticity. *)

val plan_layout : plan -> Dialed_apex.Layout.t

type t

val create :
  ?key:string -> ?policies:policy list -> ?max_steps:int ->
  ?audit:Dialed_staticcheck.Audit.config -> Pipeline.built -> t
(** The verifier holds the expected instrumented build (it produced or
    audited the binary at provisioning time) and the shared device key.
    Requires a [Full]-variant build. *)

val verify : t -> Dialed_apex.Pox.report -> outcome

val plan_of : t -> plan
(** The plan backing a single-session verifier, for handing to the fleet
    engine. *)

val pp_outcome : Format.formatter -> outcome -> unit
