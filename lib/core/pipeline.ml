module M = Dialed_msp430
module P = M.Program
module Isa = M.Isa
module Assemble = M.Assemble
module A = Dialed_apex
module T = Dialed_tinycfa.Instrument

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type variant = Unmodified | Cfa_only | Full

let variant_name v =
  match v with
  | Unmodified -> "unmodified"
  | Cfa_only -> "tiny-cfa"
  | Full -> "dialed"

type built = {
  variant : variant;
  program : P.t;
  image : Assemble.image;
  layout : A.Layout.t;
  expected_er : string;
  selective : bool;
  critical_ranges : (int * int) list;
}

let caller_symbol = "__caller"
let caller_ret_symbol = "__caller_ret"
let op_start_symbol = "__op_start"
let op_exit_symbol = "__op_exit"

let data_base = 0x0200
let caller_base = 0xF800

let rec expr_mentions label e =
  match e with
  | P.Num _ -> false
  | P.Lab l -> l = label
  | P.Add (a, b) | P.Sub (a, b) ->
    expr_mentions label a || expr_mentions label b

let operand_mentions label op =
  match op with
  | P.Imm e | P.Indexed (e, _) | P.Abs e -> expr_mentions label e
  | P.Reg _ | P.Ind _ | P.Ind_inc _ -> false

let item_mentions label item =
  match item with
  | P.Instr i | P.Synth i ->
    (match i with
     | P.Two (_, _, s, d) -> operand_mentions label s || operand_mentions label d
     | P.One (_, _, s) -> operand_mentions label s
     | P.Jump (_, l) -> l = label
     | P.Reti -> false)
  | P.Word_data es -> List.exists (expr_mentions label) es
  | P.Equ (_, e) -> expr_mentions label e
  | _ -> false

let mentions_label prog label = List.exists (item_mentions label) prog

let is_ret i =
  match i with
  | P.Two (Isa.MOV, Isa.Word, P.Ind_inc r, P.Reg 0) -> r = Isa.sp
  | _ -> false

let concrete_is_ret i =
  match i with
  | Isa.Two (Isa.MOV, Isa.Word, Isa.Sindirect_inc r, Isa.Dreg 0) -> r = Isa.sp
  | _ -> false

let build ?(variant = Full) ?(dfa_config = Dfa.default_config)
    ?(cfa_config = T.default_config) ?(data = []) ?(critical = [])
    ?(or_min = A.Layout.default_or_min) ?(or_max = A.Layout.default_or_max)
    ?(stack_top = A.Layout.default_stack_top) ~op () =
  let code_base = A.Layout.default_code_base in
  (* close the body: if it targets __op_exit, provide the final ret there *)
  let op =
    if mentions_label op op_exit_symbol then begin
      if P.exists_label op op_exit_symbol then op
      else op @ [ P.Label op_exit_symbol; P.Instr (P.Two (Isa.MOV, Isa.Word, P.Ind_inc Isa.sp, P.Reg 0)) ]
    end
    else op
  in
  (match List.rev (List.filter (fun it -> match it with P.Instr _ | P.Synth _ -> true | _ -> false) op) with
   | P.Instr last :: _ when is_ret last -> ()
   | P.Synth last :: _ when is_ret last -> ()
   | _ -> fail "operation body must end in ret (or br #__op_exit)");
  let instrumented =
    match variant with
    | Unmodified -> op
    | Cfa_only -> T.instrument ~config:cfa_config op
    | Full -> T.instrument ~config:cfa_config (Dfa.instrument ~config:dfa_config op)
  in
  let jmp_self l = [ P.Label l; P.Instr (P.Jump (Isa.JMP, l)) ] in
  let program =
    [ P.Equ (T.or_min_symbol, P.Num or_min);
      P.Equ (T.or_max_symbol, P.Num or_max);
      P.Org data_base ]
    @ data
    @ [ P.Org code_base; P.Label op_start_symbol ]
    @ instrumented
    @ [ P.Align; P.Label "__op_end" ]
    @ [ P.Org caller_base;
        P.Label caller_symbol;
        P.Instr (P.Two (Isa.MOV, Isa.Word, P.Imm (P.Lab T.or_max_symbol),
                        P.Reg T.reserved_register));
        P.Instr (P.One (Isa.CALL, Isa.Word, P.Imm (P.Lab op_start_symbol))) ]
    @ jmp_self caller_ret_symbol
  in
  let image =
    try Assemble.assemble program
    with Assemble.Error msg -> fail "assembly failed: %s" msg
  in
  let er_min = Assemble.symbol image op_start_symbol in
  let er_max = Assemble.symbol image "__op_end" - 1 in
  if er_max < er_min then fail "empty operation";
  (* the legal APEX exit: the last ret inside ER *)
  let er_exit =
    List.fold_left
      (fun acc (addr, instr) ->
         if addr >= er_min && addr <= er_max && concrete_is_ret instr then
           Some addr
         else acc)
      None image.Assemble.listing
  in
  let er_exit =
    match er_exit with
    | Some a -> a
    | None -> fail "operation contains no ret inside ER"
  in
  (* static F5: no absolute-address store may target OR *)
  List.iter
    (fun (addr, instr) ->
       match instr with
       | Isa.Two (op2, _, _, Isa.Dabsolute a)
         when op2 <> Isa.CMP && op2 <> Isa.BIT
              && a >= or_min && a <= or_max + 1 ->
         fail "static store into OR at 0x%04x (instruction 0x%04x)" a addr
       | _ -> ())
    image.Assemble.listing;
  (* data segment must stay clear of OR *)
  (match Assemble.segment_range image ~base:data_base with
   | Some (_, hi) when hi >= or_min ->
     fail "data segment reaches 0x%04x, colliding with OR" hi
   | Some _ | None -> ());
  let layout =
    try
      A.Layout.make ~er_min ~er_max ~er_exit ~or_min ~or_max ~stack_top
    with A.Layout.Invalid msg -> fail "layout: %s" msg
  in
  let expected_er =
    (* reconstruct ER bytes from the image segments *)
    let mem = M.Memory.create () in
    Assemble.load image mem;
    M.Memory.dump mem ~addr:er_min ~len:(er_max - er_min + 1)
  in
  let selective = variant = Full && dfa_config.Dfa.selective <> None in
  (* resolve the critical globals to the inclusive address ranges the
     static audit must see covered *)
  let critical_ranges =
    List.map
      (fun (name, size) ->
         match Assemble.symbol_opt image name with
         | Some a -> (a, a + max size 1 - 1)
         | None -> fail "critical global %s not in the image" name)
      critical
    |> List.sort compare
  in
  { variant; program; image; layout; expected_er; selective;
    critical_ranges }

let fingerprint built =
  let l = built.layout in
  Dialed_crypto.Sha256.hex
    (Dialed_crypto.Sha256.digest
       (String.concat "|"
          ([ variant_name built.variant;
             Printf.sprintf "%04x.%04x.%04x.%04x.%04x.%04x" l.A.Layout.er_min
               l.A.Layout.er_max l.A.Layout.er_exit l.A.Layout.or_min
               l.A.Layout.or_max l.A.Layout.stack_top;
             built.expected_er ]
           (* the reduced discipline is part of the firmware identity: the
              same ER bytes audited against different critical sets must
              not share a cached plan *)
           @ (if built.selective then
                [ "selective";
                  String.concat ","
                    (List.map (fun (lo, hi) -> Printf.sprintf "%04x-%04x" lo hi)
                       built.critical_ranges) ]
              else []))))

let device ?key built =
  match key with
  | Some key -> A.Device.create ~key ~image:built.image ~layout:built.layout ()
  | None -> A.Device.create ~image:built.image ~layout:built.layout ()

let code_size_bytes built =
  built.layout.A.Layout.er_max - built.layout.A.Layout.er_min + 1

let eval_expr built e =
  let rec eval e =
    match e with
    | P.Num n -> n
    | P.Lab l ->
      (match Assemble.symbol_opt built.image l with
       | Some v -> v
       | None -> fail "unknown symbol %s in annotation" l)
    | P.Add (a, b) -> eval a + eval b
    | P.Sub (a, b) -> eval a - eval b
  in
  eval e
