module M = Dialed_msp430
module P = M.Program
module Isa = M.Isa
module T = Dialed_tinycfa.Instrument

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type selective = {
  critical : string list;
}

type config = {
  static_fast_path : bool;
  trust_frame_reads : bool;
  selective : selective option;
}

let default_config =
  { static_fast_path = true; trust_frame_reads = true; selective = None }

let frame_pointer = 6
let r4 = T.reserved_register

let log_input ~fresh op = T.log_value_tagged ~fresh `Input op

(* ------------------------------------------------------------------ *)
(* Classification of memory-read operands (Definition 1).              *)

type read_class =
  | No_read                       (* register / immediate *)
  | In_stack                      (* statically within [SP, base] *)
  | Static_input of P.operand     (* statically outside the stack *)
  | Dynamic of { base : Isa.reg; offset : P.expr option; autoinc : bool }

let classify config op =
  match op with
  | P.Reg _ | P.Imm _ -> No_read
  | P.Abs e ->
    if config.static_fast_path then Static_input (P.Abs e)
    else Dynamic { base = -1; offset = Some e; autoinc = false }
  | P.Indexed (x, r) ->
    if r = Isa.sp || (config.trust_frame_reads && r = frame_pointer) then
      In_stack
    else Dynamic { base = r; offset = Some x; autoinc = false }
  | P.Ind r ->
    if r = Isa.sp || (config.trust_frame_reads && r = frame_pointer) then
      In_stack
    else Dynamic { base = r; offset = None; autoinc = false }
  | P.Ind_inc r ->
    if r = Isa.sp || (config.trust_frame_reads && r = frame_pointer) then
      In_stack
    else Dynamic { base = r; offset = None; autoinc = true }

let op_reads_dst two_op =
  match two_op with
  | Isa.MOV -> false
  | Isa.ADD | Isa.ADDC | Isa.SUBC | Isa.SUB | Isa.CMP | Isa.DADD
  | Isa.BIT | Isa.BIC | Isa.BIS | Isa.XOR | Isa.AND -> true

(* memory-read operands of an instruction, with their role *)
let read_operands config i =
  match i with
  | P.Two (Isa.MOV, _, src, P.Reg 0) ->
    (* br: control-flow data, logged by Tiny-CFA *)
    ignore src;
    []
  | P.Two (op, _, src, dst) ->
    let srcs =
      match classify config src with No_read | In_stack -> [] | c -> [ (`Src, c) ]
    in
    let dsts =
      if op_reads_dst op then
        match classify config dst with
        | No_read | In_stack -> []
        | c -> [ (`Dst, c) ]
      else []
    in
    srcs @ dsts
  | P.One (Isa.CALL, _, _) -> [] (* destination logged by Tiny-CFA *)
  | P.One (_, _, src) ->
    (match classify config src with No_read | In_stack -> [] | c -> [ (`Src, c) ])
  | P.Jump _ | P.Reti -> []

(* ------------------------------------------------------------------ *)
(* Emission.                                                           *)

(* Fig. 5 range check: computes the effective address into [scratch] and
   branches to a fresh in-stack label when [SP <= ea <= mem[OR_MAX]].
   Falls through when the address is outside the stack (a data input). *)
let range_check ~in_lbl ~out_lbl scratch base offset =
  let ea_setup =
    (if base >= 0 then
       [ P.Synth (P.Two (Isa.MOV, Isa.Word, P.Reg base, P.Reg scratch)) ]
     else [])
    @ (match offset with
       | Some e when base >= 0 ->
         [ P.Synth (P.Two (Isa.ADD, Isa.Word, P.Imm e, P.Reg scratch)) ]
       | Some e ->
         [ P.Synth (P.Two (Isa.MOV, Isa.Word, P.Imm e, P.Reg scratch)) ]
       | None -> [])
  in
  ea_setup
  @ [ P.Synth (P.Two (Isa.CMP, Isa.Word, P.Abs (P.Lab T.or_max_symbol),
                      P.Reg scratch));
      P.Synth (P.Jump (Isa.JEQ, in_lbl));  (* ea = base of stack: inside *)
      P.Synth (P.Jump (Isa.JC, out_lbl));  (* ea > base: outside *)
      P.Synth (P.Two (Isa.CMP, Isa.Word, P.Reg Isa.sp, P.Reg scratch));
      P.Synth (P.Jump (Isa.JC, in_lbl));   (* sp <= ea <= base: inside *)
      P.Label out_lbl ]

let scratch_for i =
  let used = P.instr_registers i in
  match List.find_opt (fun r -> not (List.mem r used)) [ 15; 14; 13; 12; 11 ] with
  | Some r -> r
  | None -> fail "no scratch register for a read check (%a)" P.pp_instr i

(* mov <mem>, rN with a dynamic address: rN is dead before the load, so it
   serves as the check scratch; the load is duplicated on the two
   mutually-exclusive paths. *)
let dynamic_mov_load ~fresh i dst_reg base offset =
  let in_lbl = fresh () and out_lbl = fresh () and done_lbl = fresh () in
  P.Annot (P.Synth_mark "read")
  :: range_check ~in_lbl ~out_lbl dst_reg base offset
  @ [ P.Instr i ]
  @ log_input ~fresh (P.Reg dst_reg)
  @ [ P.Synth (P.Jump (Isa.JMP, done_lbl));
      P.Label in_lbl;
      P.Instr i;
      P.Label done_lbl ]

(* general case: check with a pushed scratch, then re-read the operand to
   log it (RAM-safe; MiniC never applies arithmetic to peripherals) *)
let dynamic_general ~fresh i operand base offset =
  let in_lbl = fresh () and out_lbl = fresh () and done_lbl = fresh () in
  let scratch = scratch_for i in
  [ P.Annot (P.Synth_mark "read");
    P.Synth (P.One (Isa.PUSH, Isa.Word, P.Reg scratch)) ]
  @ range_check ~in_lbl ~out_lbl scratch base offset
  @ [ P.Synth (P.Two (Isa.MOV, Isa.Word, P.Ind_inc Isa.sp, P.Reg scratch));
      P.Instr i ]
  @ log_input ~fresh operand
  @ [ P.Synth (P.Jump (Isa.JMP, done_lbl));
      P.Label in_lbl;
      P.Synth (P.Two (Isa.MOV, Isa.Word, P.Ind_inc Isa.sp, P.Reg scratch));
      P.Instr i;
      P.Label done_lbl ]

let operand_of_role i role =
  match role, i with
  | `Src, (P.Two (_, _, src, _) | P.One (_, _, src)) -> src
  | `Dst, P.Two (_, _, _, dst) -> dst
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Selective attestation (OAT-style).                                  *)

(* Does this static read still need a log entry under the selective
   discipline? Named globals: only when declared critical (the verifier's
   replay reproduces non-critical RAM from its own memory). Numeric
   absolute addresses are memory-mapped peripherals in generated code:
   their values exist only on the device, so they are always logged. *)
let selective_logs_static sel op =
  match op with
  | P.Abs (P.Lab name) -> List.mem name sel.critical
  | _ -> true

(* A dynamic read may drop its F4 log when the compiler names the object
   it stays inside ([Array_load] annotation) and that object is not
   critical: a read guard proves the address at run time, and the static
   dataflow audit re-proves from the binary that the guarded range avoids
   MMIO, the critical set and the log. *)
let selective_guard sel annot =
  match annot with
  | Some (P.Array_load { array_name; base; size_bytes })
    when not (List.mem array_name sel.critical) ->
    Some (base, size_bytes)
  | _ -> None

let emit_guard ~fresh i lo size_bytes base offset =
  let scratch = scratch_for i in
  T.read_guard ~fresh ~lo ~size_bytes base offset scratch @ [ P.Instr i ]

let rewrite config ~fresh annot i =
  match read_operands config i with
  | [] -> [ P.Instr i ]
  | [ (role, cls) ] ->
    (match cls, i with
     | Static_input op, P.Two (Isa.MOV, _, _, P.Reg rn) when rn <> 0 ->
       (match config.selective with
        | Some sel when not (selective_logs_static sel op) -> [ P.Instr i ]
        | Some _ | None ->
          (* the loaded value sits in the register: log it directly, never
             re-reading the (possibly side-effecting) peripheral *)
          P.Instr i :: log_input ~fresh (P.Reg rn))
     | Static_input op, _ ->
       (match config.selective with
        | Some sel when not (selective_logs_static sel op) -> [ P.Instr i ]
        | Some _ | None -> P.Instr i :: log_input ~fresh op)
     | Dynamic { base; offset; autoinc }, P.Two (Isa.MOV, _, _, P.Reg rn)
       when rn <> 0 ->
       if rn = base then
         fail "load into its own address register cannot be attested (%a)"
           P.pp_instr i
       else
         let offset = if autoinc then None else offset in
         (match Option.bind config.selective (fun s -> selective_guard s annot)
          with
          | Some (lo, size_bytes) when not autoinc ->
            emit_guard ~fresh i lo size_bytes base offset
          | _ -> dynamic_mov_load ~fresh i rn base offset)
     | Dynamic { autoinc = true; _ }, _ ->
       fail "auto-increment read cannot be attested here (%a)" P.pp_instr i
     | Dynamic { base; offset; _ }, _ ->
       (match Option.bind config.selective (fun s -> selective_guard s annot)
        with
        | Some (lo, size_bytes) -> emit_guard ~fresh i lo size_bytes base offset
        | None -> dynamic_general ~fresh i (operand_of_role i role) base offset)
     | (No_read | In_stack), _ -> assert false)
  | multi ->
    (* two memory reads in one instruction: support the all-static case *)
    if List.for_all (fun (_, c) -> match c with Static_input _ -> true | _ -> false)
        multi
    then
      P.Instr i
      :: List.concat_map
        (fun (_, c) ->
           match c with
           | Static_input op ->
             (match config.selective with
              | Some sel when not (selective_logs_static sel op) -> []
              | Some _ | None -> log_input ~fresh op)
           | _ -> [])
        multi
    else
      fail "instruction with multiple dynamic memory reads (%a)" P.pp_instr i

(* ------------------------------------------------------------------ *)
(* Flag-liveness validation (inserts both before and after reads).     *)

let validate config prog =
  if List.mem r4 (P.registers_used prog) then
    fail "operation uses the reserved register r4";
  let instruments i = read_operands config i <> [] in
  T.validate_no_insertion_hazard ~needs_insertion:instruments prog;
  (* additionally: a flag-setting instruction that itself gets a log
     appended after it must not immediately feed a conditional jump *)
  let rec scan items =
    match items with
    | P.Instr i :: rest when instruments i ->
      let rec next_is_condjump l =
        match l with
        | P.Annot _ :: tl | P.Comment _ :: tl -> next_is_condjump tl
        | P.Instr (P.Jump (c, _)) :: _ -> c <> Isa.JMP
        | _ -> false
      in
      if next_is_condjump rest then
        fail "flag-liveness hazard: instrumented read (%a) feeds a \
              conditional jump" P.pp_instr i;
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan prog

(* ------------------------------------------------------------------ *)

(* Like [P.map_instrs], but hands the rewrite the [Array_load] annotation
   bound to each instruction — the object name and bounds selective mode
   needs to emit a read guard. Annotations themselves stay in place. *)
let map_instrs_annot f items =
  let pending = ref None in
  List.concat_map
    (fun item ->
       match item with
       | P.Annot (P.Array_load _ as a) ->
         pending := Some a;
         [ item ]
       | P.Instr i ->
         let a = !pending in
         pending := None;
         f a i
       | P.Annot _ | P.Label _ | P.Comment _ -> [ item ]
       | _ ->
         pending := None;
         [ item ])
    items

(* F3: log the base stack pointer (lands in the word at OR_MAX, where F4's
   range checks read it back) followed by all argument registers r8..r15. *)
let entry_logging ~fresh =
  log_input ~fresh (P.Reg Isa.sp)
  @ List.concat_map (fun r -> log_input ~fresh (P.Reg r))
      [ 8; 9; 10; 11; 12; 13; 14; 15 ]

let instrument ?(config = default_config) prog =
  validate config prog;
  List.iter
    (fun item ->
       match item with
       | P.Instr P.Reti -> fail "reti inside an attested operation"
       | _ -> ())
    prog;
  let fresh = P.fresh_label prog ~prefix:"__dfa_" in
  let is_prefix_item item =
    (* annotations bind to the next instruction: they must stay in the
       body so inserted entry code does not capture them *)
    match item with
    | P.Label _ | P.Comment _ | P.Equ _ -> true
    | _ -> false
  in
  let rec split_prefix acc items =
    match items with
    | item :: rest when is_prefix_item item -> split_prefix (item :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let prefix, body = split_prefix [] prog in
  prefix @ entry_logging ~fresh @ map_instrs_annot (rewrite config ~fresh) body

let count_input_sites prog =
  let rec count acc items =
    match items with
    | P.Annot (P.Log_site `Input) :: rest -> count (acc + 1) rest
    | _ :: rest -> count acc rest
    | [] -> acc
  in
  count 0 prog
