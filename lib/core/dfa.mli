(** The DIALED data-flow instrumentation pass: features F3 and F4 of
    paper §III-C / §IV.

    {b F3 — operation arguments.} At the operation's entry the pass logs
    the base stack pointer (written to the word at [OR_MAX], since [r4]
    starts there) followed by all eight argument registers [r8..r15] —
    always all of them, so no input can be missed regardless of how many
    arguments the application actually passes (Fig. 4).

    {b F4 — runtime data inputs.} Every memory-read instruction whose
    address is not statically within the operation's stack is instrumented:
    the read address is compared against the stack bounds
    [\[SP, mem\[OR_MAX\]\]]; values read from outside are data inputs and
    are appended to I-Log (Fig. 5). Reads with statically-known addresses
    (globals, memory-mapped peripherals) are by Definition 1 always outside
    the stack, so they are logged unconditionally without the runtime
    check — design decision D2.

    The pass runs {e before} Tiny-CFA's pass; both mark their emitted code
    as [Synth], so neither re-instruments the other. The shared log
    primitive and abort label come from {!Dialed_tinycfa.Instrument}. *)

exception Error of string

type selective = {
  critical : string list;
      (** names of the globals declared [critical] in the source; only
          their reads (plus all peripheral reads) keep F4 log entries *)
}

type config = {
  static_fast_path : bool;
      (** log statically-out-of-stack reads without a runtime range check
          (D2). [false] = emit the Fig. 5 check for every read. *)
  trust_frame_reads : bool;
      (** treat [X(sp)] and [X(r6)] (frame pointer) reads as statically
          in-stack and skip them entirely. [false] = runtime-check them
          too. *)
  selective : selective option;
      (** [Some _] switches F4 to OAT-style selective attestation: static
          reads of non-critical named globals are left unlogged (the
          verifier's replay reproduces them from its own memory), and
          dynamic reads of compiler-named non-critical arrays get a
          {!Dialed_tinycfa.Instrument.read_guard} instead of a log entry.
          Peripheral reads, critical reads and unattributed dynamic reads
          keep the full F4 treatment. Sound only together with the
          [Dialed_staticcheck] dataflow audit, which re-proves coverage
          from the binary. [None] (default) = log everything. *)
}

val default_config : config
(** Both booleans true, [selective = None] — the configuration the
    evaluation uses. *)

val frame_pointer : Dialed_msp430.Isa.reg
(** [r6]: the register the MiniC code generator uses as frame pointer and
    this pass trusts under [trust_frame_reads]. *)

val instrument :
  ?config:config -> Dialed_msp430.Program.t -> Dialed_msp430.Program.t
(** Apply F3 + F4 to an operation body (before Tiny-CFA). Raises {!Error}
    on contract violations (r4 use, [reti], flag hazards, auto-increment
    reads it cannot attest). *)

val count_input_sites : Dialed_msp430.Program.t -> int
(** Number of I-Log append sites in an instrumented program. *)
