module A = Dialed_apex
module M = Dialed_msp430

type t = {
  lo : int;   (* or_min *)
  hi : int;   (* or_max *)
  data : string;  (* bytes of [or_min .. or_max+1] *)
}

let of_report (r : A.Pox.report) =
  { lo = r.A.Pox.or_min; hi = r.A.Pox.or_max; data = r.A.Pox.or_data }

let of_device d =
  let layout = A.Device.layout d in
  let lo = layout.A.Layout.or_min and hi = layout.A.Layout.or_max in
  { lo; hi;
    data = M.Memory.dump (A.Device.memory d) ~addr:lo ~len:(hi + 2 - lo) }

let or_min t = t.lo
let or_max t = t.hi

let word_at t addr =
  let off = addr - t.lo in
  if off < 0 || off + 1 >= String.length t.data then
    invalid_arg (Printf.sprintf "Oplog.word_at: 0x%04x outside OR" addr)
  else Char.code t.data.[off] lor (Char.code t.data.[off + 1] lsl 8)

let entry t k = word_at t (t.hi - (2 * k))

let saved_sp t = entry t 0

let args t = List.init 8 (fun i -> entry t (1 + i))

(* F3 logs r8 first and r15 last; argument i lives in register 15-i *)
let arg_value t i =
  if i < 0 || i > 7 then invalid_arg "Oplog.arg_value: index in 0..7"
  else entry t (8 - i)

let capacity_entries t = (t.hi + 2 - t.lo) / 2

(* [final_r4] comes straight out of an attacker-controlled report: clamp
   derived counts into [0, capacity] instead of producing negative list
   lengths or reading outside the OR window. *)
let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let entries_down_to t ~final_r4 =
  let n = clamp 0 (capacity_entries t) ((t.hi - final_r4) / 2) in
  List.init n (fun k -> entry t k)

let used_bytes t ~final_r4 =
  clamp 0 (t.hi + 2 - t.lo) (t.hi + 2 - (final_r4 + 2))
