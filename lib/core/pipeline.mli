(** End-to-end build: an operation body (from MiniC or hand-written
    assembly) to a loadable, attestable image.

    The pipeline applies the instrumentation passes for the requested
    variant, lays the program out in the canonical MSP430F1xx map, emits
    the untrusted caller shim, assembles, and derives the APEX layout:

    {v
      0x0200  data segment (globals)
      0x0400  OR  (__OR_MIN .. __OR_MAX+1; log stack grows down)
      0x0A00  stack top
      0xE000  ER: the (instrumented) operation      <- __op_start
      0xF800  __caller: mov #__OR_MAX, r4; call #__op_start
              __caller_ret: jmp $
    v}

    Operation contract: the body's first item(s) may be labels (the entry
    point); control must leave only through the single final [ret] (inner
    functions may have their own [ret]s — the {e last} [ret] in the body is
    the legal APEX exit). MiniC's code generator produces this shape. *)

exception Error of string

type variant =
  | Unmodified   (** no instrumentation — the paper's baseline *)
  | Cfa_only     (** Tiny-CFA alone (CFA guarantee) *)
  | Full         (** DIALED + Tiny-CFA (CFA + DFA) *)

val variant_name : variant -> string

type built = {
  variant : variant;
  program : Dialed_msp430.Program.t;   (** final instrumented program *)
  image : Dialed_msp430.Assemble.image;
  layout : Dialed_apex.Layout.t;
  expected_er : string;                (** ER bytes the verifier expects *)
  selective : bool;
      (** built under the OAT-style selective discipline (a [Full]
          variant with [dfa_config.selective] set) *)
  critical_ranges : (int * int) list;
      (** resolved inclusive address ranges of the [critical] globals —
          what the static dataflow audit must see covered *)
}

val build :
  ?variant:variant ->
  ?dfa_config:Dfa.config ->
  ?cfa_config:Dialed_tinycfa.Instrument.config ->
  ?data:Dialed_msp430.Program.t ->
  ?critical:(string * int) list ->
  ?or_min:int -> ?or_max:int -> ?stack_top:int ->
  op:Dialed_msp430.Program.t ->
  unit -> built
(** Raises {!Error} (or the passes' own errors) on contract violations.
    [critical] lists the critical globals as [(symbol, size_bytes)]
    (from {!Dialed_minic.Minic.compiled}'s [criticals]); each symbol must
    resolve in the image. *)

val device : ?key:string -> built -> Dialed_apex.Device.t
(** Convenience: a fresh prover loaded with the built image. *)

val fingerprint : built -> string
(** Stable hex identity of a firmware build: SHA-256 over the variant,
    the APEX layout and the expected ER bytes. Two builds with the same
    fingerprint verify identically — the fleet plan cache keys on it. *)

val caller_symbol : string
val caller_ret_symbol : string
val op_start_symbol : string
val op_exit_symbol : string
(** ["__op_exit"]: label an operation body may target with [br] to reach
    the single final [ret] the pipeline appends when the body does not end
    in one. *)

val code_size_bytes : built -> int
(** Size of the ER segment in bytes — the Fig. 6(a) metric. *)

val eval_expr : built -> Dialed_msp430.Program.expr -> int
(** Evaluate a link-time expression against the image's symbol table
    (used by the verifier to resolve annotation bounds). *)

val concrete_is_ret : Dialed_msp430.Isa.instr -> bool
(** Whether a decoded instruction is [ret] ([mov @sp+, pc]). *)
