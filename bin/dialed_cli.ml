(* Command-line front end.

     dialed list
     dialed compile  [--app NAME | --file F --entry E]
     dialed instrument [--app NAME ...] [--variant unmodified|cfa|dialed]
     dialed run      [--app NAME] [--variant V] [--arg N]...
     dialed attest   [--app NAME] [--arg N]...
     dialed fleet    [--app NAME (default fire-sensor)] [--count N]
                     [--domains D] [--tamper K] [--pool] [--stream]
     dialed disasm   [--app NAME] [--variant V]
     dialed lint     [--app NAME | --file F | --all] [--variant V] [--json]
                     [--loop-bound K] [--require-bounded]
     dialed serve    [--app NAME] [--port P] [--domains D] [--rate R]
                     [--max-window W] [--engine evloop|threads] ...
     dialed prover   [--app NAME] [--host H] [--port P] [--rounds N]
                     [--device-id ID] [--tamper] [--pipeline W]
                     [--firmware V]
     dialed devices  --registry FILE [--register ID --key K]
                     [--quarantine ID] [--release ID] [--json]
     dialed revoke   --registry FILE KEY...
     dialed rollout  --registry FILE [--stable V] [--canary V --percent P]
                     [--promote] [--rollback] [--json]

   Exit codes are uniform across commands:
     0  success — verification accepted, audit clean, output produced
     1  rejection — a verdict was rejected or the audit found problems
     2  usage, IO, or build error
*)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module N = Dialed_net
module L = Dialed_lifecycle.Lifecycle
module S = Dialed_staticcheck
module Apps = Dialed_apps.Apps
module Minic = Dialed_minic.Minic

open Cmdliner

let apps_by_name =
  List.map (fun a -> (a.Apps.name, a)) (Apps.syringe_pump_vuln :: Apps.all)

let variant_of_string s =
  match s with
  | "unmodified" | "plain" -> Ok C.Pipeline.Unmodified
  | "cfa" | "tiny-cfa" -> Ok C.Pipeline.Cfa_only
  | "dialed" | "full" -> Ok C.Pipeline.Full
  | _ -> Error (`Msg (Printf.sprintf "unknown variant %S" s))

let variant_conv =
  Arg.conv
    ( (fun s -> variant_of_string s),
      fun ppf v ->
        Format.pp_print_string ppf (C.Pipeline.variant_name v) )

let app_arg =
  let doc = "Application name (see 'dialed list')." in
  Arg.(value & opt (some string) None & info [ "app" ] ~docv:"NAME" ~doc)

let file_arg =
  let doc = "MiniC source file (alternative to --app)." in
  Arg.(value & opt (some file) None & info [ "file" ] ~docv:"FILE" ~doc)

let entry_arg =
  let doc = "Entry function for --file sources." in
  Arg.(value & opt string "main" & info [ "entry" ] ~docv:"FUNC" ~doc)

let variant_arg =
  let doc = "Instrumentation variant: unmodified, cfa, or dialed." in
  Arg.(value & opt variant_conv C.Pipeline.Full & info [ "variant" ] ~doc)

let args_arg =
  let doc = "Operation argument (repeatable; first lands in r15)." in
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print an execution trace (up to N lines, middle elided)." in
  Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N" ~doc)

let load_source app file entry =
  match app, file with
  | Some name, None ->
    (match List.assoc_opt name apps_by_name with
     | Some a -> Ok (a.Apps.source, a.Apps.entry, Some a)
     | None -> Error (`Msg (Printf.sprintf "unknown app %S" name)))
  | None, Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok (s, entry, None)
  | None, None -> Error (`Msg "one of --app or --file is required")
  | Some _, Some _ -> Error (`Msg "--app and --file are exclusive")

let build_from ?(selective = false) source entry app variant =
  let compiled = Minic.compile ~entry source in
  let or_min =
    match app with Some a -> a.Apps.or_min | None -> 0x0280
  in
  let dfa_config =
    if selective then
      { C.Dfa.default_config with
        C.Dfa.selective =
          Some { C.Dfa.critical = List.map fst compiled.Minic.criticals } }
    else C.Dfa.default_config
  in
  C.Pipeline.build ~variant ~dfa_config ~critical:compiled.Minic.criticals
    ~data:compiled.Minic.data ~op:compiled.Minic.op ~or_min ()

(* Commands evaluate to an exit status: [Ok 0] (success) or [Ok 1]
   (rejection / findings). Usage, IO, and build failures stay in the
   [Error `Msg] channel, which the driver maps to exit 2 alongside
   cmdliner's own parse errors. *)
let wrap f = try f () with
  | Minic.Error msg | C.Pipeline.Error msg -> Error (`Msg msg)
  | Dialed_tinycfa.Instrument.Error msg | C.Dfa.Error msg -> Error (`Msg msg)
  | Unix.Unix_error (e, fn, arg) ->
    Error (`Msg (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))

let exits =
  [ Cmd.Exit.info 0 ~doc:"on success (verification accepted, audit clean).";
    Cmd.Exit.info 1
      ~doc:"on rejection (a verdict was rejected or the audit reported \
            findings).";
    Cmd.Exit.info 2 ~doc:"on usage, IO, or build errors." ]

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "%-20s %s@." "name" "description";
    Format.printf "%s@." (String.make 64 '-');
    List.iter
      (fun (name, a) -> Format.printf "%-20s %s@." name a.Apps.description)
      apps_by_name;
    Ok 0
  in
  Cmd.v (Cmd.info "list" ~exits ~doc:"List the bundled applications")
    Term.(term_result (const run $ const ()))

let compile_cmd =
  let run app file entry =
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, _) ->
          let compiled = Minic.compile ~entry source in
          print_string compiled.Minic.op_text;
          Ok 0)
  in
  Cmd.v
    (Cmd.info "compile" ~exits
       ~doc:"Compile MiniC and print the generated assembly")
    Term.(term_result (const run $ app_arg $ file_arg $ entry_arg))

let instrument_cmd =
  let run app file entry variant =
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          let built = build_from source entry a variant in
          print_string (M.Program.to_string built.C.Pipeline.program);
          Ok 0)
  in
  Cmd.v
    (Cmd.info "instrument" ~exits
       ~doc:"Print the full instrumented program (with caller shim)")
    Term.(term_result (const run $ app_arg $ file_arg $ entry_arg $ variant_arg))

let disasm_cmd =
  let run app file entry variant =
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          let built = build_from source entry a variant in
          let mem = M.Memory.create () in
          M.Assemble.load built.C.Pipeline.image mem;
          let l = built.C.Pipeline.layout in
          Format.printf "%a" (M.Disasm.pp_range mem ~lo:l.A.Layout.er_min
                                ~hi:l.A.Layout.er_max) ();
          Ok 0)
  in
  Cmd.v (Cmd.info "disasm" ~exits ~doc:"Disassemble the assembled ER")
    Term.(term_result (const run $ app_arg $ file_arg $ entry_arg $ variant_arg))

let setup_device app device =
  match app with Some a -> a.Apps.setup device | None -> ()

let run_cmd =
  let run app file entry variant args trace_n =
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          let built = build_from source entry a variant in
          let device = C.Pipeline.device built in
          setup_device a device;
          let args =
            if args = [] then
              match a with Some a -> a.Apps.benign_args | None -> []
            else args
          in
          let trace = M.Trace.create () in
          let on_step =
            match trace_n with
            | Some _ -> Some (M.Trace.record trace)
            | None -> None
          in
          let result = A.Device.run_operation ~args ?on_step device in
          Format.printf
            "variant=%s completed=%b exec=%b steps=%d cycles=%d code=%dB@."
            (C.Pipeline.variant_name variant) result.A.Device.completed
            (A.Monitor.exec_flag (A.Device.monitor device))
            result.A.Device.steps result.A.Device.cycles
            (C.Pipeline.code_size_bytes built);
          (match variant with
           | C.Pipeline.Unmodified -> ()
           | _ ->
             let oplog = C.Oplog.of_device device in
             Format.printf "log: %d bytes used@."
               (C.Oplog.used_bytes oplog
                  ~final_r4:(M.Cpu.get_reg (A.Device.cpu device) 4)));
          let writes = M.Peripherals.gpio_writes (A.Device.board device) in
          if writes <> [] then begin
            Format.printf "gpio:";
            List.iter (fun (p, v) -> Format.printf " %s<-0x%02x" p v) writes;
            Format.printf "@."
          end;
          let sent = M.Peripherals.uart_sent (A.Device.board device) in
          if sent <> [] then begin
            Format.printf "uart tx:";
            List.iter (Format.printf " %02x") sent;
            Format.printf "@."
          end;
          (match trace_n with
           | Some limit ->
             Format.printf "trace (%d steps, %d cycles):@."
               (M.Trace.length trace) (M.Trace.total_cycles trace);
             M.Trace.pp ~limit Format.std_formatter trace
           | None -> ());
          Ok 0)
  in
  Cmd.v (Cmd.info "run" ~exits
           ~doc:"Run an operation on the simulated prover")
    Term.(term_result
            (const run $ app_arg $ file_arg $ entry_arg $ variant_arg $ args_arg
             $ trace_arg))

let attest_cmd =
  let run app file entry args =
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          let built = build_from source entry a C.Pipeline.Full in
          let device = C.Pipeline.device built in
          setup_device a device;
          let args =
            if args = [] then
              match a with Some a -> a.Apps.benign_args | None -> []
            else args
          in
          let verifier = C.Verifier.create built in
          let session = C.Protocol.make_session verifier in
          let request = C.Protocol.next_request session ~args in
          let report, result = C.Protocol.prover_execute device request in
          let outcome = C.Protocol.check_response session request report in
          Format.printf "device: completed=%b exec=%b@."
            result.A.Device.completed report.A.Pox.exec;
          Format.printf "verifier: %a@." C.Verifier.pp_outcome outcome;
          (match outcome.C.Verifier.trace with
           | Some trace ->
             Format.printf
               "replay: %d steps, %d control-flow events, %d inputs@."
               trace.C.Verifier.step_count
               (List.length trace.C.Verifier.cf_dests)
               (List.length trace.C.Verifier.inputs)
           | None -> ());
          Ok (if outcome.C.Verifier.accepted then 0 else 1))
  in
  Cmd.v
    (Cmd.info "attest" ~exits
       ~doc:"Full round: run, attest, verify by replay")
    Term.(term_result (const run $ app_arg $ file_arg $ entry_arg $ args_arg))

let fleet_cmd =
  let count_arg =
    let doc = "Number of simulated devices in the fleet." in
    Arg.(value & opt int 64 & info [ "count" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Verifier worker domains (1 = strictly serial)." in
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "domains" ] ~docv:"D" ~doc)
  in
  let tamper_arg =
    let doc = "Tamper with the last K reports (flip one OR log byte each)." in
    Arg.(value & opt int 0 & info [ "tamper" ] ~docv:"K" ~doc)
  in
  let pool_arg =
    let doc =
      "Verify on a long-lived worker pool instead of spawning domains per \
       call (the production path; workers and scratch arenas stay warm)."
    in
    Arg.(value & flag & info [ "pool" ] ~doc)
  in
  let stream_arg =
    let doc =
      "Use the streaming engine (submit reports one at a time, bounded \
       in-flight window) instead of one batch call. Implies a pool."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let memo_arg =
    let doc =
      "Arm the verdict memo: repeat log shapes skip the abstract replay \
       (the HMAC token check still runs per report). Prints hit/miss \
       counters with the summary."
    in
    Arg.(value & flag & info [ "memo" ] ~doc)
  in
  let run app file entry args count domains tamper use_pool use_stream
      use_memo =
    (* a fleet of the paper's fire sensors unless told otherwise *)
    let app =
      match app, file with None, None -> Some "fire-sensor" | _ -> app
    in
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          if count < 1 then Error (`Msg "--count must be positive")
          else begin
            let built = build_from source entry a C.Pipeline.Full in
            let args =
              if args = [] then
                match a with Some a -> a.Apps.benign_args | None -> []
              else args
            in
            let batch =
              List.init count (fun i ->
                  let device = C.Pipeline.device built in
                  setup_device a device;
                  ignore (A.Device.run_operation ~args device);
                  let report =
                    A.Device.attest device
                      ~challenge:(Printf.sprintf "fleet-%06d" i)
                  in
                  let report =
                    if i < count - tamper then report
                    else begin
                      (* compromised node: forge one word of the log *)
                      let or_data = Bytes.of_string report.A.Pox.or_data in
                      let j = Bytes.length or_data - 24 in
                      Bytes.set or_data j
                        (Char.chr (Char.code (Bytes.get or_data j) lxor 0xFF));
                      { report with A.Pox.or_data = Bytes.to_string or_data }
                    end
                  in
                  (Printf.sprintf "dev-%06d" i, report))
            in
            let plan = F.Plan.of_built built in
            let memo = if use_memo then Some (F.Memo.create ()) else None in
            let summary =
              if use_stream then
                F.Fleet.verify_stream ~domains ?memo plan batch
              else if use_pool then begin
                let pool = F.Pool.create ~domains () in
                Fun.protect ~finally:(fun () -> F.Pool.shutdown pool)
                  (fun () -> F.Fleet.verify_batch ~pool ?memo plan batch)
              end
              else F.Fleet.verify_batch ~domains ?memo plan batch
            in
            Format.printf "firmware %s@."
              (String.sub (F.Plan.fingerprint plan) 0 16);
            Format.printf "%a@." F.Fleet.pp_summary summary;
            (match memo with
             | Some m -> Format.printf "%a@." F.Memo.pp_stats (F.Memo.stats m)
             | None -> ());
            Format.printf "json: %s@."
              (F.Metrics.to_json summary.F.Fleet.metrics);
            Ok (if summary.F.Fleet.metrics.F.Metrics.rejected > 0 then 1
                else 0)
          end)
  in
  Cmd.v
    (Cmd.info "fleet" ~exits
       ~doc:"Verify a simulated device fleet in parallel (batch replay)")
    Term.(term_result
            (const run $ app_arg $ file_arg $ entry_arg $ args_arg $ count_arg
             $ domains_arg $ tamper_arg $ pool_arg $ stream_arg $ memo_arg))

let lint_cmd =
  let all_arg =
    let doc = "Audit every bundled application." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the reports as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let loop_bound_arg =
    let doc =
      "Assume every loop iterates at most $(docv) times when bounding the \
       worst-case log footprint. Must be positive (exit 2 otherwise)."
    in
    Arg.(value & opt (some int) None & info [ "loop-bound" ] ~docv:"K" ~doc)
  in
  let require_bounded_arg =
    let doc = "Treat an unbounded worst-case log footprint as a finding." in
    Arg.(value & flag & info [ "require-bounded" ] ~doc)
  in
  let no_dataflow_arg =
    let doc =
      "Skip the taint dataflow pass (pattern and discipline checks only). \
       The dataflow pass is on by default and is mandatory for selective \
       builds."
    in
    Arg.(value & flag & info [ "no-dataflow" ] ~doc)
  in
  let selective_arg =
    let doc =
      "Audit the OAT-style selective build: F4 logging reduced to the \
       source's 'critical' globals, with read guards elsewhere."
    in
    Arg.(value & flag & info [ "selective" ] ~doc)
  in
  let sarif_arg =
    let doc = "Also write the findings as a SARIF 2.1.0 log to $(docv)." in
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~docv:"FILE" ~doc)
  in
  let run app file entry variant all json loop_bound require_bounded
      no_dataflow selective sarif =
    wrap (fun () ->
        match loop_bound with
        | Some k when k <= 0 ->
          Error (`Msg (Printf.sprintf "--loop-bound must be positive (got %d)" k))
        | _ ->
          let config =
            { S.Audit.default_config with
              S.Audit.loop_bound; S.Audit.require_bounded;
              S.Audit.dataflow = not no_dataflow }
          in
          let targets =
            if all then
              Ok (List.map
                    (fun (name, a) -> (name, a.Apps.source, a.Apps.entry, Some a))
                    apps_by_name)
            else
              match load_source app file entry with
              | Error e -> Error e
              | Ok (source, entry, a) ->
                let name =
                  match a, file with
                  | Some a, _ -> a.Apps.name
                  | None, Some f -> f
                  | None, None -> "stdin"
                in
                Ok [ (name, source, entry, a) ]
          in
          match targets with
          | Error e -> Error e
          | Ok targets ->
            let reports =
              List.map
                (fun (name, source, entry, a) ->
                   let built = build_from ~selective source entry a variant in
                   (name, C.Verifier.audit_built ~config built))
                targets
            in
            (match sarif with
             | Some path ->
               let oc = open_out_bin path in
               output_string oc
                 (S.Report.to_sarif_multi
                    (List.map (fun (name, r) -> (name ^ ".bin", r)) reports));
               output_char oc '\n';
               close_out oc
             | None -> ());
            if json then
              Format.printf "[%s]@."
                (String.concat ","
                   (List.map
                      (fun (name, r) ->
                         Printf.sprintf "{\"app\":%S,\"report\":%s}" name
                           (S.Report.to_json r))
                      reports))
            else
              List.iter
                (fun (name, r) ->
                   Format.printf "%s: %s@." name (S.Report.summary r);
                   if not (S.Report.ok r) then Format.printf "%a" S.Report.pp r)
                reports;
            let bad =
              List.filter (fun (_, r) -> not (S.Report.ok r)) reports
            in
            match bad with
            | [] -> Ok 0
            | bad ->
              Format.eprintf "static audit rejected %d binar%s@."
                (List.length bad) (if List.length bad = 1 then "y" else "ies");
              Ok 1)
  in
  Cmd.v
    (Cmd.info "lint" ~exits
       ~doc:"Statically audit an instrumented binary (exit 1 on findings)")
    Term.(term_result
            (const run $ app_arg $ file_arg $ entry_arg $ variant_arg $ all_arg
             $ json_arg $ loop_bound_arg $ require_bounded_arg
             $ no_dataflow_arg $ selective_arg $ sarif_arg))

let port_arg ~default =
  let doc = "TCP port (0 picks an ephemeral port)." in
  Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let domains_arg =
    let doc = "Verifier worker domains behind the gateway." in
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let window_arg =
    let doc = "Fleet-stream in-flight window (backpressure bound)." in
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"W" ~doc)
  in
  let max_window_arg =
    let doc = "Largest per-session pipelining window granted to a \
               Hello_ex peer (legacy peers always get 1)." in
    Arg.(value & opt int 32 & info [ "max-window" ] ~docv:"W" ~doc)
  in
  let rate_arg =
    let doc = "Token-bucket challenge rate (challenges/sec); unlimited \
               when absent." in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"R" ~doc)
  in
  let burst_arg =
    let doc = "Token-bucket burst size." in
    Arg.(value & opt float 8.0 & info [ "burst" ] ~docv:"B" ~doc)
  in
  let max_conns_arg =
    let doc = "Concurrent connection ceiling; excess connections get Busy." in
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Seconds a peer may take to complete one message \
               (slow-loris defense)." in
    Arg.(value & opt float 10.0 & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let duration_arg =
    let doc = "Serve for $(docv) seconds, then print stats and exit \
               (default: until SIGINT)." in
    Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"S" ~doc)
  in
  let memo_flag_arg =
    let doc = "Arm the verdict memo with default bounds: repeat log \
               shapes skip the abstract replay; freshness and token \
               checks still run per report." in
    Arg.(value & flag & info [ "memo" ] ~doc)
  in
  let memo_entries_arg =
    let doc = "Verdict-memo entry ceiling (implies --memo)." in
    Arg.(value & opt (some int) None
         & info [ "memo-entries" ] ~docv:"N" ~doc)
  in
  let memo_bytes_arg =
    let doc = "Verdict-memo resident-byte ceiling (implies --memo)." in
    Arg.(value & opt (some int) None & info [ "memo-bytes" ] ~docv:"B" ~doc)
  in
  let engine_arg =
    let doc =
      "Connection engine: $(b,evloop) (single-threaded readiness loop, \
       holds thousands of idle provers) or $(b,threads) (one systhread \
       per connection)."
    in
    let engine_conv =
      Arg.enum [ ("evloop", N.Server.Evloop); ("threads", N.Server.Threads) ]
    in
    Arg.(value & opt engine_conv N.Server.Evloop
         & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let registry_arg =
    let doc = "Device registry journal: replayed at startup, appended to \
               on every lifecycle transition. Arms lifecycle enforcement \
               (identity, revocation, firmware allowlist) on the gateway." in
    Arg.(value & opt (some string) None
         & info [ "registry" ] ~docv:"FILE" ~doc)
  in
  let no_anonymous_arg =
    let doc = "Refuse peers that greet without a registered device id \
               (default: anonymous legacy peers are served outside the \
               registry)." in
    Arg.(value & flag & info [ "no-anonymous" ] ~doc)
  in
  let firmware_plan_arg =
    let doc = "Map a claimed firmware version to a bundled app's verify \
               plan, e.g. $(b,--firmware-plan 1.1=syringe-pump). \
               Repeatable: a staged rollout keeps every mapped version's \
               plan resident in the gateway's plan cache. Sessions \
               claiming an unmapped (or no) version verify on the \
               default plan." in
    Arg.(value & opt_all string []
         & info [ "firmware-plan" ] ~docv:"VERSION=APP" ~doc)
  in
  let run app file entry args port domains window max_window rate burst
      max_conns deadline duration memo_flag memo_entries memo_bytes engine
      registry no_anonymous firmware_plans =
    let app =
      match app, file with None, None -> Some "fire-sensor" | _ -> app
    in
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          let built = build_from source entry a C.Pipeline.Full in
          (* route the build through a plan cache so the stats endpoint
             can report plan-cache counters alongside the memo's *)
          let pcache = F.Plan.cache () in
          let plan = F.Plan.find_or_build pcache built in
          let args =
            if args = [] then
              match a with Some a -> a.Apps.benign_args | None -> []
            else args
          in
          let fw_plans =
            List.fold_left
              (fun acc spec ->
                 match acc with
                 | Error _ as e -> e
                 | Ok acc ->
                   match String.index_opt spec '=' with
                   | None ->
                     Error (`Msg (Printf.sprintf
                                    "--firmware-plan expects VERSION=APP \
                                     (got %S)" spec))
                   | Some i ->
                     let version = String.sub spec 0 i in
                     let app_name =
                       String.sub spec (i + 1) (String.length spec - i - 1)
                     in
                     match List.assoc_opt app_name apps_by_name with
                     | None ->
                       Error (`Msg (Printf.sprintf "unknown app %S" app_name))
                     | Some ap ->
                       let b =
                         build_from ap.Apps.source ap.Apps.entry (Some ap)
                           C.Pipeline.Full
                       in
                       Ok ((version, F.Plan.find_or_build pcache b) :: acc))
              (Ok []) firmware_plans
          in
          match fw_plans with
          | Error e -> Error e
          | Ok fw_plans ->
          let lifecycle =
            if registry <> None || no_anonymous || fw_plans <> [] then
              Some (L.create ?journal:registry
                      ~allow_anonymous:(not no_anonymous) ())
            else None
          in
          let resolve_plan =
            match fw_plans with
            | [] -> None
            | plans -> Some (fun v -> List.assoc_opt v plans)
          in
          let listener, port = N.Transport.tcp_listener ~port () in
          let memo =
            if memo_flag || memo_entries <> None || memo_bytes <> None then
              Some
                { F.Memo.default_config with
                  F.Memo.max_entries =
                    Option.value memo_entries
                      ~default:F.Memo.default_config.F.Memo.max_entries;
                  max_bytes =
                    Option.value memo_bytes
                      ~default:F.Memo.default_config.F.Memo.max_bytes }
            else None
          in
          let config =
            { N.Server.default_config with
              N.Server.engine; max_conns; domains; window; max_window;
              rate; burst; args; read_deadline = Some deadline; memo;
              plan_cache = Some pcache; lifecycle; resolve_plan }
          in
          let server = N.Server.create ~config ~plan listener in
          Format.printf "gateway: firmware %s on 127.0.0.1:%d@."
            (String.sub (F.Plan.fingerprint plan) 0 16) port;
          (match lifecycle with
           | Some lc ->
             let s = L.summary lc in
             Format.printf
               "registry: %d device(s), %d quarantined, %d revoked key(s)%s@."
               s.L.devices s.L.quarantined s.L.revoked_keys
               (if s.L.allow_anonymous then "" else ", anonymous refused")
           | None -> ());
          (match duration with
           | Some s -> N.Server.start server; Thread.delay s
           | None ->
             (* the handler runs on the serving thread itself, so it
                must only *request* the stop (lock-free); the blocking
                teardown happens below once serve_forever unwinds *)
             Sys.set_signal Sys.sigint
               (Sys.Signal_handle (fun _ -> N.Server.request_stop server));
             N.Server.serve_forever server);
          Format.printf "%a@." N.Server.pp_stats (N.Server.stop server);
          Option.iter L.close lifecycle;
          Ok 0)
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:"Serve attestation traffic: challenge provers over TCP and \
             judge their reports through the fleet verifier")
    Term.(term_result
            (const run $ app_arg $ file_arg $ entry_arg $ args_arg
             $ port_arg ~default:4242 $ domains_arg $ window_arg
             $ max_window_arg $ rate_arg $ burst_arg $ max_conns_arg
             $ deadline_arg $ duration_arg $ memo_flag_arg
             $ memo_entries_arg $ memo_bytes_arg $ engine_arg
             $ registry_arg $ no_anonymous_arg $ firmware_plan_arg))

let prover_cmd =
  let host_arg =
    let doc = "Gateway host." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let device_id_arg =
    let doc = "Device identity announced in Hello." in
    Arg.(value & opt string "dev-000000"
         & info [ "device-id" ] ~docv:"ID" ~doc)
  in
  let rounds_arg =
    let doc = "Attestation rounds to run before disconnecting." in
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let tamper_arg =
    let doc = "Flip one byte of every report before sending (the gateway \
               must reject it)." in
    Arg.(value & flag & info [ "tamper" ] ~doc)
  in
  let pipeline_arg =
    let doc = "Pipeline the session with a window of $(docv) requests in \
               flight (negotiated down to the gateway's ceiling); \
               without this flag each round is a single-shot exchange." in
    Arg.(value & opt (some int) None & info [ "pipeline" ] ~docv:"W" ~doc)
  in
  let firmware_arg =
    let doc = "Firmware version to claim in the Hello_ex greeting \
               (pipelined sessions only); a lifecycle-enforcing gateway \
               checks it against the fleet rollout and verifies reports \
               on that version's plan." in
    Arg.(value & opt string "" & info [ "firmware" ] ~docv:"V" ~doc)
  in
  let run app file entry host port device_id rounds tamper pipeline firmware =
    let app =
      match app, file with None, None -> Some "fire-sensor" | _ -> app
    in
    wrap (fun () ->
        match load_source app file entry with
        | Error e -> Error e
        | Ok (source, entry, a) ->
          if rounds < 1 then Error (`Msg "--rounds must be positive")
          else begin
            let built = build_from source entry a C.Pipeline.Full in
            let device () =
              let d = C.Pipeline.device built in
              setup_device a d;
              d
            in
            let mangle =
              if not tamper then None
              else
                Some
                  (fun (r : A.Pox.report) ->
                     let b = Bytes.of_string r.A.Pox.or_data in
                     let j = Bytes.length b / 2 in
                     Bytes.set b j
                       (Char.chr (Char.code (Bytes.get b j) lxor 0x01));
                     { r with A.Pox.or_data = Bytes.to_string b })
            in
            let config = { N.Client.default_config with N.Client.mangle } in
            let conn = N.Transport.tcp_connect ~host ~port () in
            Fun.protect ~finally:(fun () -> N.Transport.close conn)
              (fun () ->
                 match pipeline with
                 | Some window ->
                   if window < 1 then Error (`Msg "--pipeline must be >= 1")
                   else begin
                     let session =
                       N.Client.attest_pipelined ~config ~window ~firmware
                         ~device ~device_id ~rounds conn
                     in
                     Format.printf "pipelined session: window %d granted@."
                       session.N.Client.granted;
                     (match session.N.Client.denied with
                      | Some (cause, detail) ->
                        Format.printf "session denied: %s (%s)@."
                          (N.Codec.denial_to_string cause) detail
                      | None -> ());
                     Array.iteri
                       (fun i (r : N.Client.pipelined_round) ->
                          Format.printf "round %d: %s (%.1f ms)@." i
                            (if r.N.Client.p_accepted then "accepted"
                             else "rejected")
                            (1000.0 *. r.N.Client.p_latency);
                          List.iter
                            (fun (kind, detail) ->
                               Format.printf "  [%s] %s@." kind detail)
                            r.N.Client.p_findings)
                       session.N.Client.results;
                     let all_ok =
                       session.N.Client.denied = None
                       && Array.for_all
                            (fun (r : N.Client.pipelined_round) ->
                               r.N.Client.p_accepted)
                            session.N.Client.results
                     in
                     Ok (if all_ok then 0 else 1)
                   end
                 | None ->
                   if firmware <> "" then
                     Error (`Msg "--firmware requires --pipeline (legacy \
                                  Hello carries no firmware claim)")
                   else
                   match
                     N.Client.attest_rounds ~config ~device ~device_id
                       ~rounds conn
                   with
                   | exception N.Client.Denied (cause, detail) ->
                     Format.printf "session denied: %s (%s)@."
                       (N.Codec.denial_to_string cause) detail;
                     Ok 1
                   | results ->
                   List.iteri
                     (fun i (r : N.Client.round) ->
                        Format.printf "round %d: %s (attempt %d)@." i
                          (if r.N.Client.accepted then "accepted"
                           else if r.N.Client.run = None then "unanswered"
                           else "rejected")
                          r.N.Client.attempt;
                        List.iter
                          (fun (kind, detail) ->
                             Format.printf "  [%s] %s@." kind detail)
                          r.N.Client.findings)
                     results;
                   let all_ok =
                     List.for_all
                       (fun (r : N.Client.round) -> r.N.Client.accepted)
                       results
                   in
                   Ok (if all_ok then 0 else 1))
          end)
  in
  Cmd.v
    (Cmd.info "prover" ~exits
       ~doc:"Act as a prover: connect to a gateway, execute challenged \
             operations on the simulated device, and report")
    Term.(term_result
            (const run $ app_arg $ file_arg $ entry_arg $ host_arg
             $ port_arg ~default:4242 $ device_id_arg $ rounds_arg
             $ tamper_arg $ pipeline_arg $ firmware_arg))

(* ------------------------------------------------------------------ *)
(* Lifecycle administration: every command opens the registry journal
   (replaying it), applies its mutations (each one appended + flushed),
   and prints the resulting state — the same journal the gateway loads
   at startup, so admin actions taken between restarts are visible on
   the next one. *)

let registry_req_arg =
  let doc = "Device registry journal (created if absent)." in
  Arg.(required & opt (some string) None
       & info [ "registry" ] ~docv:"FILE" ~doc)

let with_registry file f =
  let lc = L.create ~journal:file () in
  Fun.protect ~finally:(fun () -> L.close lc) (fun () -> f lc)

let json_arg =
  let doc = "Emit the result as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let devices_cmd =
  let register_arg =
    let doc = "Register (or re-key) device $(docv); requires --key." in
    Arg.(value & opt (some string) None
         & info [ "register" ] ~docv:"ID" ~doc)
  in
  let key_arg =
    let doc = "Provisioning key id for --register (revocation is keyed \
               on this)." in
    Arg.(value & opt (some string) None & info [ "key" ] ~docv:"KEY" ~doc)
  in
  let quarantine_arg =
    let doc = "Quarantine device $(docv) (operator judgement; only \
               --release lets it back)." in
    Arg.(value & opt (some string) None
         & info [ "quarantine" ] ~docv:"ID" ~doc)
  in
  let release_arg =
    let doc = "Release device $(docv) from quarantine, back to \
               registered. Refused while its key is still revoked — \
               re-key it with --register --key first." in
    Arg.(value & opt (some string) None
         & info [ "release" ] ~docv:"ID" ~doc)
  in
  let run registry register key quarantine release json =
    wrap (fun () ->
        with_registry registry (fun lc ->
            let ( let* ) = Result.bind in
            let* () =
              match register, key with
              | Some id, Some key_id ->
                (match L.register lc ~id ~key_id with
                 | Ok () -> Ok ()
                 | Error m -> Error (`Msg m))
              | Some _, None -> Error (`Msg "--register requires --key")
              | None, Some _ -> Error (`Msg "--key requires --register")
              | None, None -> Ok ()
            in
            let* () =
              match quarantine with
              | None -> Ok ()
              | Some id ->
                if L.quarantine lc id then Ok ()
                else Error (`Msg (Printf.sprintf "unknown device %S" id))
            in
            let* () =
              match release with
              | None -> Ok ()
              | Some id ->
                (match L.release lc id with
                 | Ok () -> Ok ()
                 | Error m -> Error (`Msg m))
            in
            let devs = L.devices lc in
            let s = L.summary lc in
            if json then
              Format.printf "{ \"summary\": %s, \"devices\": [%s] }@."
                (L.summary_to_json s)
                (String.concat ", " (List.map L.device_to_json devs))
            else begin
              if devs <> [] then begin
                Format.printf "%-20s %-16s %-22s %6s  %s@." "id" "key"
                  "state" "rounds" "firmware";
                List.iter
                  (fun (d : L.device) ->
                     Format.printf "%-20s %-16s %-22s %6d  %s@." d.L.id
                       d.L.key_id
                       (L.state_to_string d.L.state)
                       d.L.rounds
                       (if d.L.firmware = "" then "-" else d.L.firmware))
                  devs
              end;
              Format.printf
                "%d device(s): %d registered, %d attested, %d quarantined; \
                 %d revoked key(s)@."
                s.L.devices s.L.registered s.L.attested s.L.quarantined
                s.L.revoked_keys
            end;
            Ok 0))
  in
  Cmd.v
    (Cmd.info "devices" ~exits
       ~doc:"Administer the device registry: list, register, quarantine, \
             release")
    Term.(term_result
            (const run $ registry_req_arg $ register_arg $ key_arg
             $ quarantine_arg $ release_arg $ json_arg))

let revoke_cmd =
  let keys_arg =
    let doc = "Key id(s) to revoke." in
    Arg.(value & pos_all string [] & info [] ~docv:"KEY" ~doc)
  in
  let run registry keys json =
    wrap (fun () ->
        if keys = [] then Error (`Msg "at least one KEY is required")
        else
          with_registry registry (fun lc ->
              let per_key =
                List.map (fun k -> (k, L.revoke_key lc k)) keys
              in
              let s = L.summary lc in
              if json then
                Format.printf
                  "{ \"revoked\": { %s }, \"summary\": %s }@."
                  (String.concat ", "
                     (List.map
                        (fun (k, n) -> Printf.sprintf "%S: %d" k n)
                        per_key))
                  (L.summary_to_json s)
              else begin
                List.iter
                  (fun (k, n) ->
                     Format.printf
                       "revoked %s: %d device(s) newly quarantined@." k n)
                  per_key;
                Format.printf
                  "%d revoked key(s) total, %d device(s) in quarantine@."
                  s.L.revoked_keys s.L.quarantined
              end;
              Ok 0))
  in
  Cmd.v
    (Cmd.info "revoke" ~exits
       ~doc:"Revoke provisioning keys: every device on a revoked key is \
             quarantined immediately, mid-session included")
    Term.(term_result (const run $ registry_req_arg $ keys_arg $ json_arg))

let rollout_cmd =
  let stable_arg =
    let doc = "Set the stable firmware version ($(b,\"\") clears the \
               policy)." in
    Arg.(value & opt (some string) None & info [ "stable" ] ~docv:"V" ~doc)
  in
  let canary_arg =
    let doc = "Begin a staged rollout of version $(docv) to --percent of \
               the fleet." in
    Arg.(value & opt (some string) None & info [ "canary" ] ~docv:"V" ~doc)
  in
  let percent_arg =
    let doc = "Fleet percentage assigned to the canary (deterministic \
               per-device hash)." in
    Arg.(value & opt int 10 & info [ "percent" ] ~docv:"P" ~doc)
  in
  let promote_arg =
    let doc = "Promote: the canary version becomes the new stable." in
    Arg.(value & flag & info [ "promote" ] ~doc)
  in
  let rollback_arg =
    let doc = "Abort the rollout: the canary version is no longer \
               allowed." in
    Arg.(value & flag & info [ "rollback" ] ~doc)
  in
  let run registry stable canary percent promote rollback json =
    wrap (fun () ->
        with_registry registry (fun lc ->
            let ( let* ) = Result.bind in
            let* () =
              match stable with
              | Some v -> L.set_stable lc v; Ok ()
              | None -> Ok ()
            in
            let* () =
              match canary with
              | Some version ->
                (match L.begin_canary lc ~version ~percent with
                 | Ok () -> Ok ()
                 | Error m -> Error (`Msg m))
              | None -> Ok ()
            in
            let* () =
              if promote then
                match L.promote lc with
                | Ok () -> Ok ()
                | Error m -> Error (`Msg m)
              else Ok ()
            in
            let* () =
              if rollback then
                match L.rollback lc with
                | Ok () -> Ok ()
                | Error m -> Error (`Msg m)
              else Ok ()
            in
            let r = L.rollout lc in
            let devs = L.devices lc in
            let assigned =
              List.length
                (List.filter (fun (d : L.device) -> L.assigned_canary lc d.L.id)
                   devs)
            in
            if json then
              Format.printf
                "{ \"stable\": %S, \"canary\": %s, \"percent\": %d, \
                 \"devices\": %d, \"devices_assigned\": %d }@."
                r.L.stable
                (match r.L.canary with
                 | Some (v, _) -> Printf.sprintf "%S" v
                 | None -> "null")
                (match r.L.canary with Some (_, p) -> p | None -> 0)
                (List.length devs) assigned
            else begin
              (match r.L.canary with
               | Some (v, p) ->
                 Format.printf
                   "stable %s, canary %s at %d%% (%d of %d device(s) \
                    assigned)@."
                   r.L.stable v p assigned (List.length devs)
               | None ->
                 if r.L.stable = "" then
                   Format.printf "no firmware policy (all versions allowed)@."
                 else Format.printf "stable %s, no canary@." r.L.stable)
            end;
            Ok 0))
  in
  Cmd.v
    (Cmd.info "rollout" ~exits
       ~doc:"Stage a firmware rollout: stable + canary percentage, \
             promote or roll back")
    Term.(term_result
            (const run $ registry_req_arg $ stable_arg $ canary_arg
             $ percent_arg $ promote_arg $ rollback_arg $ json_arg))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "dialed" ~version:"1.0.0" ~exits
      ~doc:"DIALED: data-flow attestation for low-end embedded devices"
  in
  let group =
    Cmd.group ~default info
      [ list_cmd; compile_cmd; instrument_cmd; disasm_cmd; run_cmd;
        attest_cmd; fleet_cmd; lint_cmd; serve_cmd; prover_cmd;
        devices_cmd; revoke_cmd; rollout_cmd ]
  in
  (* Normalized exit codes: commands yield 0 (ok) or 1 (rejection);
     cmdliner's parse/term errors — bad flags, unknown apps, IO — all
     land on 2. *)
  exit
    (match Cmd.eval_value group with
     | Ok (`Ok code) -> code
     | Ok (`Help | `Version) -> 0
     | Error (`Parse | `Term | `Exn) -> 2)
