(* The APEX monitor FSM in isolation: synthetic bus events, one per rule. *)

module M = Dialed_msp430
module A = Dialed_apex
module Memory = M.Memory
module Cpu = M.Cpu

let check_bool = Alcotest.(check bool)

let layout =
  A.Layout.make ~er_min:0xE000 ~er_max:0xE0FF ~er_exit:0xE0FE
    ~or_min:0x0400 ~or_max:0x05FE ~stack_top:0x0A00

(* a synthetic retired instruction *)
let step ?(writes = []) ?(irq = false) pc_before pc_after =
  { Cpu.pc_before; instr = None (* irrelevant to the monitor *);
    pc_after;
    accesses =
      List.map
        (fun (addr, size) ->
           { Memory.kind = Memory.Write; addr; size; value = 0 })
        writes;
    irq_taken = irq; step_cycles = 1 }

let fresh () = A.Monitor.create layout

let clean_run mon =
  (* enter at er_min, execute linearly, exit from er_exit *)
  A.Monitor.observe mon (step 0xE000 0xE002);
  A.Monitor.observe mon (step 0xE002 0xE0FE);
  A.Monitor.observe mon (step 0xE0FE 0xF000)

let test_clean_run_sets_exec () =
  let mon = fresh () in
  check_bool "initially low" false (A.Monitor.exec_flag mon);
  clean_run mon;
  check_bool "exec high" true (A.Monitor.exec_flag mon);
  check_bool "no violations" true (A.Monitor.violations mon = [])

let has_violation mon pred = List.exists pred (A.Monitor.violations mon)

let test_mid_entry () =
  let mon = fresh () in
  A.Monitor.observe mon (step 0xE010 0xE012);
  check_bool "exec low" false (A.Monitor.exec_flag mon);
  check_bool "violation recorded" true
    (has_violation mon (fun v ->
         match v with A.Monitor.Entered_er_mid _ -> true | _ -> false))

let test_early_exit () =
  let mon = fresh () in
  A.Monitor.observe mon (step 0xE000 0xE002);
  A.Monitor.observe mon (step 0xE002 0xF000); (* leaves before er_exit *)
  check_bool "exec low" false (A.Monitor.exec_flag mon);
  check_bool "left early" true
    (has_violation mon (fun v ->
         match v with A.Monitor.Left_er_early _ -> true | _ -> false))

let test_irq_mid_run () =
  let mon = fresh () in
  A.Monitor.observe mon (step 0xE000 0xE002);
  A.Monitor.observe mon (step ~irq:true 0xE002 0xFFF0);
  (* even completing afterwards must not set exec without a fresh entry *)
  A.Monitor.observe mon (step 0xE0FE 0xF000);
  check_bool "exec low" false (A.Monitor.exec_flag mon)

let test_write_to_er_during_run () =
  let mon = fresh () in
  A.Monitor.observe mon (step 0xE000 0xE002);
  A.Monitor.observe mon
    (step ~writes:[ (0xE050, M.Isa.Word) ] 0xE002 0xE004);
  A.Monitor.observe mon (step 0xE0FE 0xF000);
  check_bool "exec low after self-modification" false (A.Monitor.exec_flag mon)

let test_or_write_at_rest_clears_exec () =
  let mon = fresh () in
  clean_run mon;
  A.Monitor.observe mon
    (step ~writes:[ (0x0480, M.Isa.Word) ] 0xF000 0xF002);
  check_bool "exec cleared" false (A.Monitor.exec_flag mon);
  check_bool "or violation" true
    (has_violation mon (fun v ->
         match v with A.Monitor.Or_written_outside _ -> true | _ -> false))

let test_word_write_straddling_or_boundary () =
  (* a word write at or_min - 1 .. would be odd; use or_min - 2 + word:
     touches or_min-2/or_min-1, outside -> fine; at or_min-0 touches inside *)
  let mon = fresh () in
  clean_run mon;
  A.Monitor.observe mon
    (step ~writes:[ (0x03FE, M.Isa.Word) ] 0xF000 0xF002);
  check_bool "write just below OR is fine" true (A.Monitor.exec_flag mon);
  A.Monitor.observe mon
    (step ~writes:[ (0x03FF, M.Isa.Word) ] 0xF002 0xF004);
  (* unaligned word writes align down in the CPU; the monitor sees the
     aligned access, so craft one that truly touches or_min *)
  A.Monitor.observe mon
    (step ~writes:[ (0x0400, M.Isa.Byte) ] 0xF004 0xF006);
  check_bool "byte write at or_min clears exec" false (A.Monitor.exec_flag mon)

let test_dma_rules () =
  let mon = fresh () in
  A.Monitor.observe mon (step 0xE000 0xE002);
  A.Monitor.dma_event mon ~addr:0x0900;
  A.Monitor.observe mon (step 0xE0FE 0xF000);
  check_bool "dma mid-run kills the attempt" false (A.Monitor.exec_flag mon);
  let mon = fresh () in
  clean_run mon;
  A.Monitor.dma_event mon ~addr:0x0900;
  check_bool "dma outside ER/OR at rest is fine" true (A.Monitor.exec_flag mon);
  A.Monitor.dma_event mon ~addr:0x0450;
  check_bool "dma into OR at rest clears exec" false (A.Monitor.exec_flag mon)

let test_reset () =
  let mon = fresh () in
  clean_run mon;
  A.Monitor.reset mon;
  check_bool "reset clears exec" false (A.Monitor.exec_flag mon);
  check_bool "reset clears violations" true (A.Monitor.violations mon = []);
  clean_run mon;
  check_bool "usable after reset" true (A.Monitor.exec_flag mon)

let test_reentry_restarts () =
  let mon = fresh () in
  clean_run mon;
  (* re-entering at er_min starts a fresh attempt: exec drops until the new
     run completes *)
  A.Monitor.observe mon (step 0xE000 0xE002);
  check_bool "exec low during re-run" false (A.Monitor.exec_flag mon);
  A.Monitor.observe mon (step 0xE002 0xE0FE);
  A.Monitor.observe mon (step 0xE0FE 0xF000);
  check_bool "re-earned" true (A.Monitor.exec_flag mon)

let suites =
  [ ("monitor",
     [ Alcotest.test_case "clean run" `Quick test_clean_run_sets_exec;
       Alcotest.test_case "mid entry" `Quick test_mid_entry;
       Alcotest.test_case "early exit" `Quick test_early_exit;
       Alcotest.test_case "irq mid-run" `Quick test_irq_mid_run;
       Alcotest.test_case "write to ER" `Quick test_write_to_er_during_run;
       Alcotest.test_case "OR write at rest" `Quick test_or_write_at_rest_clears_exec;
       Alcotest.test_case "boundary writes" `Quick test_word_write_straddling_or_boundary;
       Alcotest.test_case "dma rules" `Quick test_dma_rules;
       Alcotest.test_case "reset" `Quick test_reset;
       Alcotest.test_case "re-entry restarts" `Quick test_reentry_restarts ]) ]
