(* The CLI's normalized exit codes: 0 = verified/ok, 1 =
   rejected/findings, 2 = usage/IO error — uniform across commands, so
   scripts and CI can branch on the status alone. *)

let cli =
  (* the test binary runs in _build/default/test; the CLI is a sibling *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/dialed_cli.exe"

let run args =
  let cmd =
    Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote cli) args
  in
  match Sys.command cmd with
  | 127 -> Alcotest.failf "CLI not found at %s" cli
  | code -> code

let check_code what expected args =
  Alcotest.(check int) what expected (run args)

let test_success_is_zero () =
  check_code "list" 0 "list";
  check_code "compile" 0 "compile --app fire-sensor";
  check_code "attest accepted" 0 "attest --app fire-sensor";
  check_code "lint clean" 0 "lint --all";
  check_code "fleet clean" 0 "fleet --count 2 --domains 1"

let test_rejection_is_one () =
  (* uninstrumented binaries fail the audit: findings, not usage error *)
  check_code "lint findings" 1 "lint --app fire-sensor --variant unmodified";
  (* tampered fleet members are rejected *)
  check_code "fleet tampered" 1 "fleet --count 2 --domains 1 --tamper 1"

let test_usage_error_is_two () =
  check_code "unknown app" 2 "attest --app no-such-app";
  check_code "unknown flag" 2 "attest --bogus-flag";
  check_code "missing source" 2 "compile";
  check_code "unknown command" 2 "frobnicate";
  check_code "bad variant" 2 "run --app fire-sensor --variant nonsense"

let test_help_is_zero () =
  check_code "top-level help" 0 "--help";
  check_code "subcommand help" 0 "serve --help";
  check_code "version" 0 "--version"

let test_lint_flags () =
  (* the selective discipline and the dataflow switch stay exit-0 on
     clean in-tree binaries *)
  check_code "lint selective" 0 "lint --all --selective";
  check_code "lint no-dataflow" 0 "lint --all --no-dataflow";
  (* a non-positive loop bound is a usage error, not a finding *)
  check_code "loop-bound zero" 2 "lint --all --loop-bound 0";
  check_code "loop-bound negative" 2 "lint --all --loop-bound=-3"

let test_lint_sarif_output () =
  let path = Filename.temp_file "dialed-lint" ".sarif" in
  let code = run (Printf.sprintf "lint --all --sarif %s" (Filename.quote path)) in
  Alcotest.(check int) "lint --sarif exits 0" 0 code;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "sarif file non-empty" true (len > 0);
  let contains needle =
    let nh = String.length body and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub body i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sarif file carries the 2.1.0 header" true
    (contains "2.1.0");
  Alcotest.(check bool) "one run per linted app" true
    (contains "fire-sensor.bin")

let test_serve_smoke () =
  (* ephemeral port, fixed duration: starts, serves nothing, exits 0 *)
  check_code "serve window" 0 "serve --port 0 --duration 0.2 --domains 1"

let suites =
  [ ("cli-exit-codes",
     [ Alcotest.test_case "success -> 0" `Quick test_success_is_zero;
       Alcotest.test_case "rejection -> 1" `Quick test_rejection_is_one;
       Alcotest.test_case "usage error -> 2" `Quick test_usage_error_is_two;
       Alcotest.test_case "help/version -> 0" `Quick test_help_is_zero;
       Alcotest.test_case "lint flags" `Quick test_lint_flags;
       Alcotest.test_case "lint sarif output" `Quick test_lint_sarif_output;
       Alcotest.test_case "serve smoke" `Quick test_serve_smoke ]) ]
