(* The framed attestation gateway: framing, codec, transports, rate
   limiting, and full server/client rounds over in-memory loopback and
   real Unix sockets — including a hostile-peer corpus the server must
   survive. *)

module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module N = Dialed_net
module Apps = Dialed_apps.Apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- *)
(* Framing.                                                        *)

let feed_ok d s =
  match N.Frame.feed d s with
  | Ok msgs -> msgs
  | Error e -> Alcotest.failf "feed: %s" (N.Frame.error_to_string e)

let test_frame_roundtrip () =
  let d = N.Frame.decoder () in
  let payloads = [ ""; "x"; String.make 1000 'p'; "tail" ] in
  let stream = String.concat "" (List.map N.Frame.encode payloads) in
  (* one big chunk *)
  check_bool "all at once" true (feed_ok d stream = payloads);
  (* byte by byte *)
  let d = N.Frame.decoder () in
  let out = ref [] in
  String.iter
    (fun ch -> out := !out @ feed_ok d (String.make 1 ch))
    stream;
  check_bool "byte by byte" true (!out = payloads);
  check_int "no residue" 0 (N.Frame.residue d)

let test_frame_split_across_chunks () =
  let d = N.Frame.decoder () in
  let enc = N.Frame.encode (String.make 300 'q') in
  let half = String.length enc / 2 in
  check_int "first half: nothing" 0
    (List.length (feed_ok d (String.sub enc 0 half)));
  check_bool "second half completes" true
    (feed_ok d (String.sub enc half (String.length enc - half))
     = [ String.make 300 'q' ])

let test_frame_oversize_poisons () =
  let d = N.Frame.decoder ~cap:64 () in
  (* declared length 65: rejected from the header alone *)
  let header = Bytes.create 4 in
  Bytes.set_int32_le header 0 65l;
  (match N.Frame.feed d (Bytes.to_string header) with
   | Error (N.Frame.Oversize { declared = 65; cap = 64 }) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (N.Frame.error_to_string e)
   | Ok _ -> Alcotest.fail "oversize accepted");
  (* poisoned: even a valid frame now errors *)
  (match N.Frame.feed d (N.Frame.encode "ok") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "poisoned decoder accepted input");
  (* encode refuses to build an oversize frame: caller bug *)
  match N.Frame.encode ~cap:8 (String.make 9 'z') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode built an oversize frame"

(* ------------------------------------------------------------- *)
(* Codec.                                                          *)

let codec_roundtrip msg =
  match N.Codec.decode (N.Codec.encode msg) with
  | Ok m -> check_bool "roundtrip" true (m = msg)
  | Error e -> Alcotest.failf "decode: %s" (N.Codec.error_to_string e)

let test_codec_roundtrip () =
  List.iter codec_roundtrip
    [ N.Codec.Hello { device_id = "dev-42" };
      N.Codec.Ready;
      N.Codec.Request { challenge = String.make 32 'c'; args = [ 0; 7; 0xFFFF ] };
      N.Codec.Report (String.make 500 'r');
      N.Codec.Verdict
        { accepted = false;
          findings = [ ("bad-token", "token mismatch"); ("k", "") ] };
      N.Codec.Busy "rate limited";
      N.Codec.Bye;
      (* windowed-session messages *)
      N.Codec.Hello_ex { device_id = "dev-43"; window = 1; firmware = "" };
      N.Codec.Hello_ex { device_id = "d"; window = N.Codec.max_window; firmware = "" };
      N.Codec.Welcome { window = 17 };
      N.Codec.Request_seq
        { seq = 0; challenge = String.make 32 'c'; args = [ 1; 2 ] };
      N.Codec.Request_seq
        { seq = 0xFFFF_FFFF; challenge = "x"; args = [] };
      N.Codec.Report_seq { seq = 12345; wire = String.make 700 'w' };
      N.Codec.Report_seq { seq = 0; wire = "" };
      N.Codec.Verdict_seq
        { seq = 7; accepted = true; findings = [] };
      N.Codec.Verdict_seq
        { seq = 9; accepted = false;
          findings = [ ("bad-seq", "unknown sequence") ] } ]

let test_codec_window_bounds () =
  (* a zero window would deadlock a session; the codec rejects it on
     both ends *)
  (match N.Codec.encode (N.Codec.Hello_ex { device_id = "d"; window = 0; firmware = "" }) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "encoded a zero window");
  (match N.Codec.encode
           (N.Codec.Welcome { window = N.Codec.max_window + 1 })
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "encoded an oversize window");
  (* a forged zero-window frame decodes to a typed error *)
  let welcome = Bytes.of_string (N.Codec.encode (N.Codec.Welcome { window = 1 })) in
  Bytes.set welcome 1 '\x00';
  (match N.Codec.decode (Bytes.to_string welcome) with
   | Error (N.Codec.Bad_value { value = 0; _ }) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (N.Codec.error_to_string e)
   | Ok _ -> Alcotest.fail "zero window decoded");
  (* sequence numbers are u32 *)
  match
    N.Codec.encode
      (N.Codec.Report_seq { seq = 0x1_0000_0000; wire = "r" })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoded a 33-bit sequence number"

let test_codec_masks_args () =
  (* args land in 16-bit registers; encoding masks them *)
  match N.Codec.decode
          (N.Codec.encode
             (N.Codec.Request { challenge = "c"; args = [ 0x1FFFF; -1 ] }))
  with
  | Ok (N.Codec.Request { args; _ }) ->
    check_bool "masked to u16" true (args = [ 0xFFFF; 0xFFFF ])
  | _ -> Alcotest.fail "request did not decode"

let test_codec_errors () =
  let expect what pred data =
    match N.Codec.decode data with
    | Error e when pred e -> ()
    | Error e ->
      Alcotest.failf "%s: wrong cause %s" what (N.Codec.error_to_string e)
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect "empty" (function N.Codec.Empty -> true | _ -> false) "";
  expect "bad tag" (function N.Codec.Bad_tag 99 -> true | _ -> false)
    (String.make 1 (Char.chr 99));
  let hello = N.Codec.encode (N.Codec.Hello { device_id = "abcdef" }) in
  expect "truncated" (function N.Codec.Truncated _ -> true | _ -> false)
    (String.sub hello 0 (String.length hello - 2));
  expect "trailing"
    (function N.Codec.Trailing { extra = 2 } -> true | _ -> false)
    (hello ^ "xx");
  (* every strict prefix of every message kind decodes to an error *)
  List.iter
    (fun msg ->
       let enc = N.Codec.encode msg in
       for cut = 0 to String.length enc - 1 do
         match N.Codec.decode (String.sub enc 0 cut) with
         | Error _ -> ()
         | Ok _ ->
           Alcotest.failf "prefix %d of %s accepted" cut
             (Format.asprintf "%a" N.Codec.pp_msg msg)
       done)
    [ N.Codec.Hello { device_id = "d" };
      N.Codec.Request { challenge = "cc"; args = [ 1; 2 ] };
      N.Codec.Verdict { accepted = true; findings = [ ("a", "b") ] };
      N.Codec.Busy "x" ]

(* ------------------------------------------------------------- *)
(* Rate limiting (injected clock, fully deterministic).            *)

let test_ratelimit () =
  let rl = N.Ratelimit.create ~now:0.0 ~rate:2.0 ~burst:3.0 () in
  let take now = N.Ratelimit.try_take ~now rl in
  check_bool "burst of 3" true (take 0.0 && take 0.0 && take 0.0);
  check_bool "bucket empty" false (take 0.0);
  (* 2/s * 0.5s = 1 token back *)
  check_bool "one refilled" true (take 0.5);
  check_bool "only one" false (take 0.5);
  (* a clock that jumps backwards must not mint tokens *)
  check_bool "no backwards refill" false (take 0.4);
  check_bool "cap at burst" true
    (take 100.0 && take 100.0 && take 100.0 && not (take 100.0))

(* ------------------------------------------------------------- *)
(* Transports.                                                     *)

let recv_all conn n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Bytes.to_string buf
    else
      match N.Transport.recv conn buf off (n - off) with
      | 0 -> Alcotest.fail "unexpected EOF"
      | k -> go (off + k)
  in
  go 0

let exercise_conn_pair (a, b) =
  N.Transport.send a "ping-from-a";
  check_bool "a->b" true (recv_all b 11 = "ping-from-a");
  N.Transport.send b "pong";
  check_bool "b->a" true (recv_all a 4 = "pong");
  N.Transport.close a;
  (* peer sees EOF *)
  let buf = Bytes.create 8 in
  check_int "eof after close" 0 (N.Transport.recv b buf 0 8);
  N.Transport.close b

let test_loopback_roundtrip () = exercise_conn_pair (N.Transport.loopback ())
let test_socketpair_roundtrip () =
  exercise_conn_pair (N.Transport.socketpair ())

let test_tcp_roundtrip () =
  let listener, port = N.Transport.tcp_listener ~port:0 () in
  let accepted = ref None in
  let th =
    Thread.create (fun () -> accepted := Some (N.Transport.accept listener)) ()
  in
  let client = N.Transport.tcp_connect ~host:"127.0.0.1" ~port () in
  Thread.join th;
  (match !accepted with
   | Some server -> exercise_conn_pair (client, server)
   | None -> Alcotest.fail "accept did not complete");
  N.Transport.shutdown listener

let test_deadlines_fire () =
  let test_pair (a, b) =
    let buf = Bytes.create 4 in
    (match N.Transport.recv a ~deadline:0.05 buf 0 4 with
     | exception N.Transport.Timeout -> ()
     | n -> Alcotest.failf "read %d bytes from silent peer" n);
    N.Transport.close a;
    N.Transport.close b
  in
  test_pair (N.Transport.loopback ());
  test_pair (N.Transport.socketpair ())

(* ------------------------------------------------------------- *)
(* Channel: per-message deadlines (slow loris).                    *)

let test_chan_roundtrip () =
  let a, b = N.Transport.loopback () in
  let ca = N.Chan.create a and cb = N.Chan.create b in
  N.Chan.send ca (N.Codec.Hello { device_id = "d" });
  N.Chan.send ca N.Codec.Bye;
  (match N.Chan.recv cb () with
   | Ok (Some (N.Codec.Hello { device_id })) ->
     check_bool "hello" true (device_id = "d")
   | _ -> Alcotest.fail "expected Hello");
  (match N.Chan.recv cb () with
   | Ok (Some N.Codec.Bye) -> ()
   | _ -> Alcotest.fail "expected Bye");
  N.Transport.close a;
  (match N.Chan.recv cb () with
   | Ok None -> ()
   | _ -> Alcotest.fail "expected clean EOF");
  N.Transport.close b

let test_chan_slow_loris_times_out () =
  let a, b = N.Transport.loopback () in
  let cb = N.Chan.create b in
  (* drip half a frame header, then stall: per-message deadline must
     fire even though each byte arrived "recently" *)
  N.Transport.send a "\x08";
  let t =
    Thread.create
      (fun () -> Thread.delay 0.05; N.Transport.send a "\x00")
      ()
  in
  (match N.Chan.recv cb ~deadline:0.2 () with
   | exception N.Transport.Timeout -> ()
   | Ok _ | Error _ -> Alcotest.fail "expected Timeout");
  Thread.join t;
  N.Transport.close a;
  N.Transport.close b

(* ------------------------------------------------------------- *)
(* End-to-end gateway rounds.                                      *)

let fire_sensor = List.find (fun a -> a.Apps.name = "fire-sensor") Apps.all

let build_app () =
  let compiled =
    Dialed_minic.Minic.compile ~entry:fire_sensor.Apps.entry
      fire_sensor.Apps.source
  in
  C.Pipeline.build ~variant:C.Pipeline.Full ~data:compiled.Dialed_minic.Minic.data
    ~op:compiled.Dialed_minic.Minic.op ~or_min:fire_sensor.Apps.or_min ()

(* every gateway test below runs under BOTH engines: the evloop and
   threads engines must be observationally identical, and the hostile
   corpus is the proof *)
let gateway_config engine =
  { N.Server.default_config with
    N.Server.engine; domains = 1; window = 4; read_deadline = Some 2.0;
    args = fire_sensor.Apps.benign_args }

let with_gateway ?config ~engine f =
  let config =
    match config with Some c -> c | None -> gateway_config engine
  in
  let built = build_app () in
  let plan = F.Plan.of_built built in
  let listener, dial = N.Transport.loopback_listener () in
  let server = N.Server.create ~config ~plan listener in
  N.Server.start server;
  let device () =
    let d = C.Pipeline.device built in
    fire_sensor.Apps.setup d;
    d
  in
  Fun.protect
    ~finally:(fun () -> ignore (N.Server.stop server))
    (fun () -> f ~server ~dial ~device)

let client_config =
  { N.Client.default_config with
    N.Client.read_deadline = Some 2.0; backoff_base = 0.01;
    backoff_cap = 0.05 }

let test_e2e_loopback engine =
  with_gateway ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config:client_config ~device
          ~device_id:"dev-1" ~rounds:3 conn
      in
      N.Transport.close conn;
      check_int "three rounds" 3 (List.length rounds);
      List.iter
        (fun (r : N.Client.round) ->
           check_bool "accepted" true r.N.Client.accepted;
           check_bool "first attempt" true (r.N.Client.attempt = 1);
           check_bool "ran" true (r.N.Client.run <> None))
        rounds;
      let stats = N.Server.stop server in
      check_int "verdicts accepted" 3 stats.N.Server.verdicts_accepted;
      check_int "requests issued" 3 stats.N.Server.requests_issued;
      check_int "no sessions left" 0 stats.N.Server.sessions_active;
      check_int "no conns left" 0 stats.N.Server.connections_active;
      check_int "fleet agrees" 3 stats.N.Server.verify.F.Metrics.accepted)

let test_e2e_tcp engine =
  let built = build_app () in
  let plan = F.Plan.of_built built in
  let listener, port = N.Transport.tcp_listener ~port:0 () in
  let server = N.Server.create ~config:(gateway_config engine) ~plan listener in
  N.Server.start server;
  let device () =
    let d = C.Pipeline.device built in
    fire_sensor.Apps.setup d;
    d
  in
  Fun.protect
    ~finally:(fun () -> ignore (N.Server.stop server))
    (fun () ->
       let conn = N.Transport.tcp_connect ~host:"127.0.0.1" ~port () in
       let rounds =
         N.Client.attest_rounds ~config:client_config ~device
           ~device_id:"dev-tcp" ~rounds:2 conn
       in
       N.Transport.close conn;
       check_bool "both accepted" true
         (List.for_all (fun (r : N.Client.round) -> r.N.Client.accepted)
            rounds);
       let stats = N.Server.stats server in
       check_int "two verdicts over tcp" 2 stats.N.Server.verdicts_accepted)

let test_e2e_two_provers engine =
  with_gateway ~engine (fun ~server:_ ~dial ~device ->
      let run id () =
        let conn = dial () in
        let rounds =
          N.Client.attest_rounds ~config:client_config ~device
            ~device_id:id ~rounds:2 conn
        in
        N.Transport.close conn;
        List.for_all (fun (r : N.Client.round) -> r.N.Client.accepted) rounds
      in
      let ok_a = ref false and ok_b = ref false in
      let ta = Thread.create (fun () -> ok_a := run "dev-a" ()) () in
      let tb = Thread.create (fun () -> ok_b := run "dev-b" ()) () in
      Thread.join ta;
      Thread.join tb;
      check_bool "prover a all accepted" true !ok_a;
      check_bool "prover b all accepted" true !ok_b)

let test_e2e_tampered_report_rejected engine =
  with_gateway ~engine (fun ~server ~dial ~device ->
      let mangle (r : A.Pox.report) =
        let b = Bytes.of_string r.A.Pox.or_data in
        let j = Bytes.length b / 2 in
        Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor 0x01));
        { r with A.Pox.or_data = Bytes.to_string b }
      in
      let config = { client_config with N.Client.mangle = Some mangle } in
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config ~device ~device_id:"dev-evil"
          ~rounds:1 conn
      in
      N.Transport.close conn;
      (match rounds with
       | [ r ] ->
         check_bool "rejected" true (not r.N.Client.accepted);
         check_bool "bad-token finding" true
           (List.exists (fun (k, _) -> k = "bad-token") r.N.Client.findings)
       | _ -> Alcotest.fail "expected one round");
      let stats = N.Server.stop server in
      check_int "rejected counted" 1 stats.N.Server.verdicts_rejected)

let test_e2e_wire_replay_rejected engine =
  (* a prover that answers the second challenge with the first round's
     report: freshness gate rejects it without any replay work *)
  with_gateway ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      let chan = N.Chan.create conn in
      let recv () =
        match N.Chan.recv chan ~deadline:2.0 () with
        | Ok (Some m) -> m
        | _ -> Alcotest.fail "gateway hung up"
      in
      N.Chan.send chan (N.Codec.Hello { device_id = "dev-replay" });
      N.Chan.send chan N.Codec.Ready;
      let report1 =
        match recv () with
        | N.Codec.Request { challenge; args } ->
          let req = { C.Protocol.challenge; args } in
          let report, _ = C.Protocol.prover_execute (device ()) req in
          A.Wire.encode report
        | m -> Alcotest.failf "expected Request, got %a" N.Codec.pp_msg m
      in
      N.Chan.send chan (N.Codec.Report report1);
      (match recv () with
       | N.Codec.Verdict { accepted; _ } ->
         check_bool "honest round accepted" true accepted
       | m -> Alcotest.failf "expected Verdict, got %a" N.Codec.pp_msg m);
      (* second round: replay the recorded report *)
      N.Chan.send chan N.Codec.Ready;
      (match recv () with
       | N.Codec.Request _ -> ()
       | m -> Alcotest.failf "expected Request, got %a" N.Codec.pp_msg m);
      N.Chan.send chan (N.Codec.Report report1);
      (match recv () with
       | N.Codec.Verdict { accepted; findings } ->
         check_bool "replay rejected" true (not accepted);
         check_bool "freshness finding" true
           (List.exists (fun (k, _) -> k = "bad-token") findings)
       | m -> Alcotest.failf "expected Verdict, got %a" N.Codec.pp_msg m);
      N.Chan.send chan N.Codec.Bye;
      N.Transport.close conn;
      let stats = N.Server.stop server in
      check_int "one accept one reject" 1 stats.N.Server.verdicts_rejected;
      (* the replay was stopped at the gate: only one report reached
         the fleet verifier *)
      check_int "only honest report replayed" 1
        stats.N.Server.verify.F.Metrics.batch_size)

let test_e2e_rate_limited_busy engine =
  let config =
    { (gateway_config engine) with N.Server.rate = Some 0.000001; burst = 1.0 }
  in
  with_gateway ~config ~engine (fun ~server ~dial ~device:_ ->
      let conn = dial () in
      let chan = N.Chan.create conn in
      N.Chan.send chan (N.Codec.Hello { device_id = "dev-greedy" });
      N.Chan.send chan N.Codec.Ready;
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok (Some (N.Codec.Request _)) -> ()
       | _ -> Alcotest.fail "first Ready should get the burst token");
      N.Chan.send chan N.Codec.Ready;
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok (Some (N.Codec.Busy _)) -> ()
       | _ -> Alcotest.fail "second Ready should be rate limited");
      N.Transport.close conn;
      let stats = N.Server.stop server in
      check_int "rate limited counted" 1 stats.N.Server.rate_limited)

let test_e2e_max_conns_busy engine =
  let config = { (gateway_config engine) with N.Server.max_conns = 1 } in
  with_gateway ~config ~engine (fun ~server:_ ~dial ~device ->
      (* occupy the only slot with a live session *)
      let first = dial () in
      let chan = N.Chan.create first in
      N.Chan.send chan (N.Codec.Hello { device_id = "dev-slot" });
      N.Chan.send chan N.Codec.Ready;
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok (Some (N.Codec.Request _)) -> ()
       | _ -> Alcotest.fail "first connection should be served");
      (* the second connection is turned away with Busy *)
      let second = dial () in
      let chan2 = N.Chan.create second in
      (match N.Chan.recv chan2 ~deadline:2.0 () with
       | Ok (Some (N.Codec.Busy _)) -> ()
       | _ -> Alcotest.fail "second connection should get Busy");
      N.Transport.close second;
      (* freeing the slot lets a new prover in *)
      N.Transport.close first;
      let rec retry n =
        let conn = dial () in
        (* until the handler notices the hangup we may still be turned
           away (Busy + close -> Transport.Closed on our next send) *)
        match
          Fun.protect ~finally:(fun () -> N.Transport.close conn)
            (fun () ->
               N.Client.attest_rounds ~config:client_config ~device
                 ~device_id:"dev-next" ~rounds:1 conn)
        with
        | [ r ] when r.N.Client.accepted -> ()
        | _ when n > 0 -> Thread.delay 0.02; retry (n - 1)
        | _ -> Alcotest.fail "freed slot never became usable"
        | exception N.Transport.Closed when n > 0 ->
          Thread.delay 0.02; retry (n - 1)
      in
      retry 50)

(* ------------------------------------------------------------- *)
(* Pipelined sessions.                                             *)

let test_e2e_pipelined_loopback engine =
  with_gateway ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      let session =
        N.Client.attest_pipelined ~config:client_config ~window:4 ~device
          ~device_id:"dev-pipe" ~rounds:8 conn
      in
      N.Transport.close conn;
      check_int "granted the requested window" 4 session.N.Client.granted;
      check_int "eight rounds" 8 (Array.length session.N.Client.results);
      Array.iter
        (fun (r : N.Client.pipelined_round) ->
           check_bool "accepted" true r.N.Client.p_accepted;
           check_bool "latency measured" true
             (Float.is_finite r.N.Client.p_latency
              && r.N.Client.p_latency >= 0.0))
        session.N.Client.results;
      check_int "no busy bounces" 0 session.N.Client.busy_bounces;
      let stats = N.Server.stop server in
      check_int "verdicts accepted" 8 stats.N.Server.verdicts_accepted;
      check_int "requests issued" 8 stats.N.Server.requests_issued;
      check_int "no window overflow" 0 stats.N.Server.window_overflow;
      check_int "no bad seq" 0 stats.N.Server.bad_seq;
      check_int "no sessions left" 0 stats.N.Server.sessions_active)

let test_e2e_pipelined_window_clamped engine =
  let config = { (gateway_config engine) with N.Server.max_window = 2 } in
  with_gateway ~config ~engine (fun ~server:_ ~dial ~device ->
      let conn = dial () in
      let session =
        N.Client.attest_pipelined ~config:client_config ~window:16 ~device
          ~device_id:"dev-greedy" ~rounds:4 conn
      in
      N.Transport.close conn;
      check_int "server clamped the window" 2 session.N.Client.granted;
      check_bool "all rounds still complete" true
        (Array.for_all
           (fun (r : N.Client.pipelined_round) -> r.N.Client.p_accepted)
           session.N.Client.results))

let test_e2e_pipelined_tamper_per_round engine =
  (* tamper exactly rounds 1 and 3 of 5: the verdict array must show
     rejections at those indexes and acceptances elsewhere — windowed
     dispatch must not mix rounds up *)
  with_gateway ~engine (fun ~server ~dial ~device ->
      let tampered = [ 1; 3 ] in
      let respond ~seq req =
        let report, _ = C.Protocol.prover_execute (device ()) req in
        if List.mem seq tampered then
          { report with A.Pox.or_data = String.map (fun _ -> '\xAA') report.A.Pox.or_data }
        else report
      in
      let conn = dial () in
      let session =
        N.Client.attest_pipelined ~config:client_config ~window:5 ~respond
          ~device ~device_id:"dev-mixed" ~rounds:5 conn
      in
      N.Transport.close conn;
      Array.iteri
        (fun i (r : N.Client.pipelined_round) ->
           check_bool
             (Printf.sprintf "round %d verdict" i)
             (not (List.mem i tampered))
             r.N.Client.p_accepted)
        session.N.Client.results;
      let stats = N.Server.stop server in
      check_int "three accepted" 3 stats.N.Server.verdicts_accepted;
      check_int "two rejected" 2 stats.N.Server.verdicts_rejected)

(* ------------------------------------------------------------- *)
(* Hostile pipelining: bad sequence numbers, window floods, Bye
   with rounds in flight — typed rejections, and the gateway keeps
   serving honest provers.                                         *)

let pipelined_handshake chan ~device_id ~window =
  N.Chan.send chan (N.Codec.Hello_ex { device_id; window; firmware = "" });
  match N.Chan.recv chan ~deadline:2.0 () with
  | Ok (Some (N.Codec.Welcome { window = w })) -> w
  | _ -> Alcotest.fail "no Welcome"

let test_hostile_bad_seq_reports engine =
  with_gateway ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      let chan = N.Chan.create conn in
      let recv () =
        match N.Chan.recv chan ~deadline:2.0 () with
        | Ok (Some m) -> m
        | _ -> Alcotest.fail "gateway hung up"
      in
      let _ = pipelined_handshake chan ~device_id:"dev-seq" ~window:4 in
      (* a report for a sequence number that was never issued *)
      N.Chan.send chan (N.Codec.Report_seq { seq = 7; wire = "junk" });
      (match recv () with
       | N.Codec.Verdict_seq { seq = 7; accepted = false; findings } ->
         check_bool "typed bad-seq finding" true
           (List.exists (fun (k, _) -> k = "bad-seq") findings)
       | m -> Alcotest.failf "expected Verdict#7, got %a" N.Codec.pp_msg m);
      (* run one honest round, then answer the same sequence again *)
      N.Chan.send chan N.Codec.Ready;
      let seq0, wire0 =
        match recv () with
        | N.Codec.Request_seq { seq; challenge; args } ->
          let req = { C.Protocol.challenge; args } in
          let report, _ = C.Protocol.prover_execute (device ()) req in
          (seq, A.Wire.encode report)
        | m -> Alcotest.failf "expected Request, got %a" N.Codec.pp_msg m
      in
      N.Chan.send chan (N.Codec.Report_seq { seq = seq0; wire = wire0 });
      (match recv () with
       | N.Codec.Verdict_seq { seq; accepted = true; _ } when seq = seq0 -> ()
       | m -> Alcotest.failf "expected Verdict#0+, got %a" N.Codec.pp_msg m);
      N.Chan.send chan (N.Codec.Report_seq { seq = seq0; wire = wire0 });
      (match recv () with
       | N.Codec.Verdict_seq { seq; accepted = false; findings }
         when seq = seq0 ->
         check_bool "already-answered seq gets bad-seq" true
           (List.exists (fun (k, _) -> k = "bad-seq") findings)
       | m -> Alcotest.failf "expected rejection, got %a" N.Codec.pp_msg m);
      N.Chan.send chan N.Codec.Bye;
      N.Transport.close conn;
      let stats = N.Server.stop server in
      check_int "bad_seq counted twice" 2 stats.N.Server.bad_seq;
      check_int "one honest verdict" 1 stats.N.Server.verdicts_accepted;
      (* the bad-seq junk never reached the verify engine *)
      check_int "engine saw one report" 1
        stats.N.Server.verify.F.Metrics.batch_size)

let test_hostile_window_flood_and_bye engine =
  with_gateway ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      let chan = N.Chan.create conn in
      let granted = pipelined_handshake chan ~device_id:"dev-flood" ~window:4 in
      check_int "granted 4" 4 granted;
      (* flood Ready far past the window without ever reporting *)
      for _ = 1 to 10 do
        N.Chan.send chan N.Codec.Ready
      done;
      let requests = ref 0 and busys = ref 0 in
      for _ = 1 to 10 do
        match N.Chan.recv chan ~deadline:2.0 () with
        | Ok (Some (N.Codec.Request_seq _)) -> incr requests
        | Ok (Some (N.Codec.Busy _)) -> incr busys
        | _ -> Alcotest.fail "gateway hung up mid-flood"
      done;
      check_int "window worth of requests" 4 !requests;
      check_int "flood bounced" 6 !busys;
      (* Bye with four rounds in flight: typed refusal, then drop *)
      N.Chan.send chan N.Codec.Bye;
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok (Some (N.Codec.Busy _)) -> ()
       | m ->
         Alcotest.failf "expected Busy after hostile Bye, got %s"
           (match m with
            | Ok (Some m) -> Format.asprintf "%a" N.Codec.pp_msg m
            | Ok None -> "EOF"
            | Error _ -> "decode error"));
      (* the connection is dropped after the refusal *)
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok None -> ()
       | Ok (Some m) ->
         Alcotest.failf "expected EOF, got %a" N.Codec.pp_msg m
       | Error _ -> ()
       | exception N.Transport.Closed -> ());
      N.Transport.close conn;
      (* honest traffic still flows *)
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config:client_config ~device
          ~device_id:"dev-honest" ~rounds:1 conn
      in
      N.Transport.close conn;
      (match rounds with
       | [ r ] -> check_bool "honest round accepted" true r.N.Client.accepted
       | _ -> Alcotest.fail "expected one round");
      let stats = N.Server.stop server in
      check_int "window overflow counted" 6 stats.N.Server.window_overflow;
      check_bool "hostile Bye counted" true (stats.N.Server.protocol_errors >= 1);
      check_int "no sessions leaked" 0 stats.N.Server.sessions_active)

let test_hostile_seq_frames_on_legacy_session engine =
  with_gateway ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      let chan = N.Chan.create conn in
      N.Chan.send chan (N.Codec.Hello { device_id = "dev-old" });
      (* numbered frames on a single-shot session: hostile, dropped *)
      N.Chan.send chan (N.Codec.Report_seq { seq = 0; wire = "x" });
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok None -> ()
       | Ok (Some m) ->
         Alcotest.failf "expected drop, got %a" N.Codec.pp_msg m
       | Error _ -> ()
       | exception N.Transport.Closed -> ());
      N.Transport.close conn;
      (* and the gateway still serves *)
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config:client_config ~device
          ~device_id:"dev-honest" ~rounds:1 conn
      in
      N.Transport.close conn;
      (match rounds with
       | [ r ] -> check_bool "honest round accepted" true r.N.Client.accepted
       | _ -> Alcotest.fail "expected one round");
      let stats = N.Server.stop server in
      check_bool "violation counted" true (stats.N.Server.protocol_errors >= 1))

(* ------------------------------------------------------------- *)
(* Hostile peers: the gateway must shed them and keep serving.     *)

let test_server_survives_malformed_peers engine =
  let config =
    { (gateway_config engine) with N.Server.read_deadline = Some 0.15; max_frame = 4096 }
  in
  with_gateway ~config ~engine (fun ~server ~dial ~device ->
      let attack bytes =
        let conn = dial () in
        (try N.Transport.send conn bytes with N.Transport.Closed -> ());
        (* wait for the server to drop us *)
        let buf = Bytes.create 256 in
        let rec drain () =
          match N.Transport.recv conn ~deadline:2.0 buf 0 256 with
          | 0 -> ()
          | _ -> drain ()
          | exception N.Transport.Timeout -> ()
          | exception N.Transport.Closed -> ()
        in
        drain ();
        N.Transport.close conn
      in
      let oversize_header =
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 1_000_000l;
        Bytes.to_string b
      in
      (* each entry is one hostile connection *)
      attack "";                                     (* instant hangup *)
      attack "\x03";                                 (* partial header *)
      attack oversize_header;                        (* huge declared len *)
      attack (N.Frame.encode "");                    (* empty payload *)
      attack (N.Frame.encode "\xFF\xFF\xFF");        (* bad tag *)
      attack (N.Frame.encode (N.Codec.encode N.Codec.Ready));
                                       (* Ready before Hello *)
      attack (N.Frame.encode (N.Codec.encode N.Codec.Bye) ^ "\x01");
                                       (* trailing partial header *)
      attack (String.concat ""
                (List.init 64 (fun i -> N.Frame.encode (String.make i 'j'))));
                                       (* a burst of junk frames *)
      (* after all that, an honest prover still gets served *)
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config:client_config ~device
          ~device_id:"dev-honest" ~rounds:1 conn
      in
      N.Transport.close conn;
      (match rounds with
       | [ r ] -> check_bool "honest round accepted" true r.N.Client.accepted
       | _ -> Alcotest.fail "expected one round");
      let stats = N.Server.stop server in
      check_bool "hostile streams counted" true
        (stats.N.Server.protocol_errors + stats.N.Server.deadline_timeouts
         >= 5);
      check_int "no sessions leaked" 0 stats.N.Server.sessions_active;
      check_int "no conns leaked" 0 stats.N.Server.connections_active)

let test_server_survives_slow_loris engine =
  let config = { (gateway_config engine) with N.Server.read_deadline = Some 0.1 } in
  with_gateway ~config ~engine (fun ~server ~dial ~device ->
      let conn = dial () in
      (* a valid Hello, then a frame header that never completes *)
      let chan = N.Chan.create conn in
      N.Chan.send chan (N.Codec.Hello { device_id = "dev-loris" });
      N.Transport.send conn "\x10\x00";
      (* server must cut us loose at the deadline *)
      let buf = Bytes.create 16 in
      (match N.Transport.recv conn ~deadline:2.0 buf 0 16 with
       | 0 -> ()
       | _ -> Alcotest.fail "expected EOF after deadline"
       | exception N.Transport.Timeout ->
         Alcotest.fail "server never dropped the slow loris");
      N.Transport.close conn;
      (* and still serves honest traffic *)
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config:client_config ~device
          ~device_id:"dev-honest" ~rounds:1 conn
      in
      N.Transport.close conn;
      (match rounds with
       | [ r ] -> check_bool "honest round accepted" true r.N.Client.accepted
       | _ -> Alcotest.fail "expected one round");
      let stats = N.Server.stop server in
      check_bool "timeout counted" true (stats.N.Server.deadline_timeouts >= 1);
      check_int "no sessions leaked" 0 stats.N.Server.sessions_active)

(* ------------------------------------------------------------- *)
(* Idle reaping and half-open connections.                         *)

let test_idle_connection_reaped engine =
  (* a peer that opens a session and then falls silent is reaped at
     the read deadline — idle sockets must not accumulate *)
  let config =
    { (gateway_config engine) with N.Server.read_deadline = Some 0.1 }
  in
  with_gateway ~config ~engine (fun ~server ~dial ~device:_ ->
      let conn = dial () in
      let chan = N.Chan.create conn in
      N.Chan.send chan (N.Codec.Hello_ex { device_id = "dev-idle"; window = 4; firmware = "" });
      (match N.Chan.recv chan ~deadline:2.0 () with
       | Ok (Some (N.Codec.Welcome _)) -> ()
       | _ -> Alcotest.fail "no Welcome");
      (* now say nothing; the server must hang up on us *)
      let buf = Bytes.create 16 in
      (match N.Transport.recv conn ~deadline:2.0 buf 0 16 with
       | 0 -> ()
       | _ -> Alcotest.fail "expected EOF for the idle session"
       | exception N.Transport.Timeout ->
         Alcotest.fail "idle connection never reaped");
      N.Transport.close conn;
      let stats = N.Server.stop server in
      check_bool "timeout counted" true (stats.N.Server.deadline_timeouts >= 1);
      check_int "no sessions leaked" 0 stats.N.Server.sessions_active;
      check_int "no conns leaked" 0 stats.N.Server.connections_active)

let test_half_open_fin_no_bye engine =
  (* TCP half-close: the peer FINs its write side without sending Bye
     and keeps its read side open. The gateway must treat the EOF as
     the end of the session and release the connection — a half-open
     socket held forever is a slot leak an attacker can farm. *)
  let built = build_app () in
  let plan = F.Plan.of_built built in
  let listener, port = N.Transport.tcp_listener ~port:0 () in
  let server =
    N.Server.create ~config:(gateway_config engine) ~plan listener
  in
  N.Server.start server;
  Fun.protect
    ~finally:(fun () -> ignore (N.Server.stop server))
    (fun () ->
       let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect sock
         (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       let hello =
         N.Frame.encode
           (N.Codec.encode (N.Codec.Hello { device_id = "dev-fin" }))
       in
       let n = Unix.write_substring sock hello 0 (String.length hello) in
       check_int "hello written" (String.length hello) n;
       (* FIN our write side; our read side stays open *)
       Unix.shutdown sock Unix.SHUTDOWN_SEND;
       (* the gateway closes its end: we observe EOF rather than hang *)
       let buf = Bytes.create 64 in
       let deadline = Unix.gettimeofday () +. 5.0 in
       let rec drain () =
         if Unix.gettimeofday () > deadline then
           Alcotest.fail "gateway never closed the half-open connection"
         else
           match Unix.select [ sock ] [] [] 0.2 with
           | [], _, _ -> drain ()
           | _ ->
             (match Unix.read sock buf 0 64 with
              | 0 -> ()
              | _ -> drain ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ())
       in
       drain ();
       Unix.close sock;
       (* the slot is free again *)
       let rec settled n =
         let stats = N.Server.stats server in
         if stats.N.Server.connections_active = 0 then stats
         else if n = 0 then stats
         else (Thread.delay 0.02; settled (n - 1))
       in
       let stats = settled 100 in
       check_int "no sessions leaked" 0 stats.N.Server.sessions_active;
       check_int "no conns leaked" 0 stats.N.Server.connections_active;
       (* a clean FIN is EOF, not a protocol violation *)
       check_int "FIN is not an error" 0 stats.N.Server.protocol_errors)

let test_request_stop_unwinds engine =
  (* request_stop is the signal-handler path: lock-free, closes the
     listener, and makes serve_forever return so the caller can run
     the full stop for teardown + stats. A regression here shows up as
     a gateway that ignores Ctrl-C (the handler used to call [stop]
     from the serving thread and self-deadlock). *)
  let built = build_app () in
  let plan = F.Plan.of_built built in
  let listener, port = N.Transport.tcp_listener ~port:0 () in
  let server =
    N.Server.create ~config:(gateway_config engine) ~plan listener
  in
  let unwound = Atomic.make false in
  let th =
    Thread.create
      (fun () -> N.Server.serve_forever server; Atomic.set unwound true) ()
  in
  (* prove the engine is actually serving before pulling the plug *)
  let conn = N.Transport.tcp_connect ~host:"127.0.0.1" ~port () in
  let chan = N.Chan.create conn in
  N.Chan.send chan (N.Codec.Hello_ex { device_id = "dev-sig"; window = 2; firmware = "" });
  (match N.Chan.recv chan ~deadline:5.0 () with
   | Ok (Some (N.Codec.Welcome _)) -> ()
   | _ -> Alcotest.fail "no Welcome");
  N.Server.request_stop server;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not (Atomic.get unwound) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_bool "serve_forever returned" true (Atomic.get unwound);
  Thread.join th;
  N.Transport.close conn;
  (* new dials are refused: the listener socket is gone *)
  (match N.Transport.tcp_connect ~host:"127.0.0.1" ~port () with
   | conn2 ->
     N.Transport.close conn2;
     Alcotest.fail "listener still accepting after request_stop"
   | exception Unix.Unix_error (_, _, _) -> ());
  let stats = N.Server.stop server in
  check_int "no sessions leaked" 0 stats.N.Server.sessions_active;
  check_int "no conns leaked" 0 stats.N.Server.connections_active

(* ------------------------------------------------------------- *)
(* Client backoff.                                                 *)

let test_backoff_deterministic () =
  let cfg =
    { N.Client.default_config with
      N.Client.backoff_base = 0.05; backoff_cap = 2.0;
      jitter_seed = "pin-me" }
  in
  let seq n = List.init n (fun i -> N.Client.backoff_delay cfg ~attempt:(i + 1)) in
  check_bool "same config, same delays" true (seq 8 = seq 8);
  List.iteri
    (fun i d ->
       let attempt = i + 1 in
       let raw = min 2.0 (0.05 *. (2.0 ** float_of_int (attempt - 1))) in
       check_bool "within jitter envelope" true
         (d >= 0.5 *. raw && d < 1.5 *. raw))
    (seq 8);
  (* different seeds decorrelate retries across a prover fleet *)
  let other = { cfg with N.Client.jitter_seed = "someone-else" } in
  check_bool "different seed, different delays" true
    (N.Client.backoff_delay cfg ~attempt:1
     <> N.Client.backoff_delay other ~attempt:1)

let suites =
  [ ("net-frame",
     [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
       Alcotest.test_case "split chunks" `Quick test_frame_split_across_chunks;
       Alcotest.test_case "oversize poisons" `Quick test_frame_oversize_poisons ]);
    ("net-codec",
     [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
       Alcotest.test_case "args masked" `Quick test_codec_masks_args;
       Alcotest.test_case "typed errors" `Quick test_codec_errors;
       Alcotest.test_case "window bounds" `Quick test_codec_window_bounds ]);
    ("net-ratelimit",
     [ Alcotest.test_case "token bucket" `Quick test_ratelimit ]);
    ("net-transport",
     [ Alcotest.test_case "loopback" `Quick test_loopback_roundtrip;
       Alcotest.test_case "socketpair" `Quick test_socketpair_roundtrip;
       Alcotest.test_case "tcp" `Quick test_tcp_roundtrip;
       Alcotest.test_case "deadlines" `Quick test_deadlines_fire ]);
    ("net-chan",
     [ Alcotest.test_case "roundtrip" `Quick test_chan_roundtrip;
       Alcotest.test_case "slow loris times out" `Quick
         test_chan_slow_loris_times_out ]);
    ("net-gateway",
     (* the full corpus, once per engine: identical observable behavior
        is the contract *)
     List.concat_map
       (fun (tag, engine) ->
          let case name f =
            Alcotest.test_case (name ^ " [" ^ tag ^ "]") `Quick
              (fun () -> f engine)
          in
          [ case "e2e loopback" test_e2e_loopback;
            case "e2e tcp" test_e2e_tcp;
            case "two provers" test_e2e_two_provers;
            case "tamper rejected" test_e2e_tampered_report_rejected;
            case "wire replay rejected" test_e2e_wire_replay_rejected;
            case "rate limit Busy" test_e2e_rate_limited_busy;
            case "max conns Busy" test_e2e_max_conns_busy;
            case "survives malformed peers"
              test_server_survives_malformed_peers;
            case "survives slow loris" test_server_survives_slow_loris;
            case "idle connection reaped" test_idle_connection_reaped;
            case "half-open FIN without Bye" test_half_open_fin_no_bye;
            case "request_stop unwinds serve_forever"
              test_request_stop_unwinds ])
       [ ("evloop", N.Server.Evloop); ("threads", N.Server.Threads) ]);
    ("net-pipelined",
     List.concat_map
       (fun (tag, engine) ->
          let case name f =
            Alcotest.test_case (name ^ " [" ^ tag ^ "]") `Quick
              (fun () -> f engine)
          in
          [ case "e2e pipelined loopback" test_e2e_pipelined_loopback;
            case "window clamped by server" test_e2e_pipelined_window_clamped;
            case "per-round tamper isolated"
              test_e2e_pipelined_tamper_per_round;
            case "bad sequence numbers rejected" test_hostile_bad_seq_reports;
            case "window flood and hostile Bye"
              test_hostile_window_flood_and_bye;
            case "seq frames on legacy session"
              test_hostile_seq_frames_on_legacy_session ])
       [ ("evloop", N.Server.Evloop); ("threads", N.Server.Threads) ]);
    ("net-client",
     [ Alcotest.test_case "backoff deterministic" `Quick
         test_backoff_deterministic ]) ]
