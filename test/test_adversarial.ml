(* Adversarial corpus against the DIALED verifier: randomized and
   deterministic tampering of otherwise-valid reports.

   Two attacker models are exercised:
   - a network attacker who mutates report bytes but cannot re-MAC:
     every mutation must die at the token check;
   - a stronger (hypothetical) attacker who knows the device key and can
     forge a consistent token over a doctored log: the replay layer must
     still reject via log divergence, malformed-log handling or the
     shadow call stack. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module Apps = Dialed_apps.Apps
module Asm_parse = M.Asm_parse
module Hmac = Dialed_crypto.Hmac

let check_bool = Alcotest.(check bool)

(* ---------------------------------------------------------------- *)
(* A benign fire-sensor run attested once and shared by every case.   *)

let benign =
  lazy
    (let run = Apps.run Apps.fire_sensor in
     let report = A.Device.attest run.Apps.device ~challenge:"adv-corpus" in
     let final_r4 = M.Cpu.get_reg (A.Device.cpu run.Apps.device) 4 in
     let used_entries =
       (run.Apps.built.C.Pipeline.layout.A.Layout.or_max - final_r4) / 2
     in
     (run.Apps.built, report, used_entries))

let plan_for built = C.Verifier.plan built

let verify report =
  let built, _, _ = Lazy.force benign in
  C.Verifier.verify_plan (plan_for built) report

let kinds outcome =
  List.map C.Verifier.finding_kind outcome.C.Verifier.findings

(* log entry k lives at address or_max - 2k; as an or_data offset *)
let entry_offset (report : A.Pox.report) k =
  report.A.Pox.or_max - (2 * k) - report.A.Pox.or_min

let entry_word (report : A.Pox.report) k =
  let off = entry_offset report k in
  Char.code report.A.Pox.or_data.[off]
  lor (Char.code report.A.Pox.or_data.[off + 1] lsl 8)

let set_entry_word or_data off v =
  Bytes.set or_data off (Char.chr (v land 0xFF));
  Bytes.set or_data (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let with_or_data (report : A.Pox.report) or_data =
  { report with A.Pox.or_data = Bytes.to_string or_data }

(* the strong attacker: recompute the token over the doctored report with
   the device key (mirrors Pox.issue's binding order) *)
let le16 v =
  Printf.sprintf "%c%c" (Char.chr (v land 0xFF))
    (Char.chr ((v lsr 8) land 0xFF))

let forge_token built (r : A.Pox.report) =
  let token =
    Hmac.mac_parts ~key:A.Device.default_key
      [ r.A.Pox.challenge;
        le16 r.A.Pox.er_min; le16 r.A.Pox.er_max; le16 r.A.Pox.er_exit;
        le16 r.A.Pox.or_min; le16 r.A.Pox.or_max;
        (if r.A.Pox.exec then "\001" else "\000");
        built.C.Pipeline.expected_er;
        r.A.Pox.or_data ]
  in
  { r with A.Pox.token }

(* ---------------------------------------------------------------- *)
(* Network attacker (no key): every byte-level mutation is caught by
   the HMAC token check and nothing downstream ever runs or crashes.   *)

let prop_bit_flip =
  let _, report, _ = Lazy.force benign in
  let len = String.length report.A.Pox.or_data in
  QCheck.Test.make ~name:"any OR bit flip without the key is rejected"
    ~count:200
    QCheck.(pair (int_bound (len - 1)) (int_bound 7))
    (fun (byte, bit) ->
       let or_data = Bytes.of_string report.A.Pox.or_data in
       Bytes.set or_data byte
         (Char.chr (Char.code (Bytes.get or_data byte) lxor (1 lsl bit)));
       let outcome = verify (with_or_data report or_data) in
       (not outcome.C.Verifier.accepted) && kinds outcome = [ "bad-token" ])

let prop_truncation =
  let _, report, _ = Lazy.force benign in
  let len = String.length report.A.Pox.or_data in
  QCheck.Test.make ~name:"any OR truncation without the key is rejected"
    ~count:100
    QCheck.(int_bound (len - 1))
    (fun keep ->
       let truncated =
         { report with
           A.Pox.or_data = String.sub report.A.Pox.or_data 0 keep }
       in
       let outcome = verify truncated in
       (not outcome.C.Verifier.accepted) && kinds outcome = [ "bad-token" ])

let prop_entry_swap =
  let _, report, used = Lazy.force benign in
  QCheck.Test.make ~name:"swapping two log entries without the key is rejected"
    ~count:100
    QCheck.(pair (int_bound (used - 1)) (int_bound (used - 1)))
    (fun (i, j) ->
       let wi = entry_word report i and wj = entry_word report j in
       if wi = wj then true   (* an equal-word swap is not a mutation *)
       else begin
         let or_data = Bytes.of_string report.A.Pox.or_data in
         set_entry_word or_data (entry_offset report i) wj;
         set_entry_word or_data (entry_offset report j) wi;
         let outcome = verify (with_or_data report or_data) in
         (not outcome.C.Verifier.accepted) && kinds outcome = [ "bad-token" ]
       end)

(* ---------------------------------------------------------------- *)
(* Key-holding attacker: the token verifies, so rejection must come
   from the replay layer.                                             *)

(* Flip the top bit of every attestable log entry in turn and re-MAC.
   Entry 0 is the F3-saved stack pointer and entries >= 9 are runtime
   CF-Log/I-Log entries: the replayed execution must contradict each.
   (Entries 1-8 are the argument snapshot the replay itself boots from,
   so a flip there changes the claimed execution rather than forging
   one — covered by [test_wrong_args_claim_rejected] in the e2e suite.) *)
let test_forged_mac_entry_flips () =
  let built, report, used = Lazy.force benign in
  check_bool "log has runtime entries beyond the F3 prologue" true (used > 9);
  let entries = 0 :: List.init (used - 9) (fun i -> 9 + i) in
  List.iter
    (fun k ->
       let or_data = Bytes.of_string report.A.Pox.or_data in
       let off = entry_offset report k in
       set_entry_word or_data off (entry_word report k lxor 0x8000);
       let forged = forge_token built (with_or_data report or_data) in
       let outcome = verify forged in
       if outcome.C.Verifier.accepted then
         Alcotest.failf "forged-MAC flip of entry %d accepted" k;
       let ks = kinds outcome in
       if
         not
           (List.exists
              (fun s -> s = "log-divergence" || s = "replay-failed")
              ks)
       then
         Alcotest.failf
           "forged-MAC flip of entry %d: expected replay-level rejection, \
            got: %a"
           k C.Verifier.pp_outcome outcome)
    entries

(* A short log with a valid token must be treated as a malformed report,
   not crash the verifier (exercises the Invalid_argument containment). *)
let test_forged_mac_truncation_is_malformed () =
  let built, report, _ = Lazy.force benign in
  List.iter
    (fun keep ->
       let truncated =
         { report with
           A.Pox.or_data = String.sub report.A.Pox.or_data 0 keep }
       in
       let forged = forge_token built truncated in
       let outcome = verify forged in
       check_bool
         (Printf.sprintf "truncated-to-%d rejected" keep)
         true (not outcome.C.Verifier.accepted);
       check_bool
         (Printf.sprintf "truncated-to-%d flagged as replay failure" keep)
         true
         (List.exists
            (fun f ->
               match f with
               | C.Verifier.Replay_failed msg ->
                 String.length msg >= 9
                 && String.sub msg 0 9 = "malformed"
               | _ -> false)
            outcome.C.Verifier.findings))
    [ 0; 1; 17; String.length report.A.Pox.or_data - 2 ]

(* ---------------------------------------------------------------- *)
(* Shadow-stack regression: an operation that returns through a forged
   frame pushed at runtime. The device completes legally (EXEC = 1, the
   token verifies), and the final instrumented ret fires with an EMPTY
   shadow stack — which used to be silently ignored.                   *)

let forged_return_op = {|
    entry:
        push #mid
        ret                       ; returns into the forged frame
    mid:
        br #__op_exit
    |}

let test_empty_shadow_stack_reported () =
  let built = C.Pipeline.build ~op:(Asm_parse.parse forged_return_op) () in
  let device = C.Pipeline.device built in
  let result = A.Device.run_operation device in
  check_bool "device run completes" true result.A.Device.completed;
  check_bool "exec = 1 (invisible to APEX)" true
    (A.Monitor.exec_flag (A.Device.monitor device));
  let report = A.Device.attest device ~challenge:"forged-frame" in
  let outcome = C.Verifier.verify_plan (C.Verifier.plan built) report in
  check_bool "verifier rejects" true (not outcome.C.Verifier.accepted);
  check_bool "ret on an empty shadow stack is reported" true
    (List.exists
       (fun f ->
          match f with
          | C.Verifier.Shadow_stack_violation { expected = None; _ } -> true
          | _ -> false)
       outcome.C.Verifier.findings)

(* ---------------------------------------------------------------- *)
(* Mutation corpus against the static auditor: take a correctly
   instrumented binary, apply one targeted byte-level mutation an
   attacker with flash access could, and check the auditor flags it
   with the right error class. These mutations never reach the replay —
   the audit is exactly the stage that catches binaries whose
   instrumentation itself was doctored.                                *)

module S = Dialed_staticcheck
module Isa = M.Isa

let mem_of built =
  let m = M.Memory.create () in
  M.Assemble.load built.C.Pipeline.image m;
  m

let audit_mem built mem =
  let l = built.C.Pipeline.layout in
  S.Audit.audit ~mem ~er_min:l.A.Layout.er_min ~er_max:l.A.Layout.er_max
    ~or_min:l.A.Layout.or_min ~or_max:l.A.Layout.or_max ()

let stream_of built mem =
  let l = built.C.Pipeline.layout in
  S.Stream.of_memory mem ~lo:l.A.Layout.er_min ~hi:l.A.Layout.er_max

let find_entry stream p =
  let n = S.Stream.length stream in
  let rec go i =
    if i >= n then Alcotest.fail "mutation target not found in the binary"
    else
      let e = S.Stream.get stream i in
      if p i e then (i, e) else go (i + 1)
  in
  go 0

let rfind_entry stream p =
  let rec go i =
    if i < 0 then Alcotest.fail "mutation target not found in the binary"
    else
      let e = S.Stream.get stream i in
      if p i e then (i, e) else go (i - 1)
  in
  go (S.Stream.length stream - 1)

let op_ret = "op:\n    mov #7, r10\n    ret\n"
let op_store = "op:\n    mov #0x0300, r10\n    mov #1, 2(r10)\n    ret\n"
let op_jmp = "op:\n    mov #1, r5\n    jmp done\ndone:\n    ret\n"

(* each mutant: (name, operation, patch, expected finding kind) *)
let mutants =
  [ ("stripped CF append", op_ret,
     (fun built mem ->
        (* retarget the ret append's head store from 0(r4) to 0(r5) *)
        let _, e =
          find_entry (stream_of built mem) (fun _ e ->
              match e.S.Stream.ins with
              | Isa.Two (Isa.MOV, _, Isa.Sindirect 1, Isa.Dindexed (0, 4)) ->
                true
              | _ -> false)
        in
        let w = M.Memory.peek16 mem e.S.Stream.addr in
        M.Memory.poke16 mem e.S.Stream.addr ((w land 0xFFF0) lor 5)),
     "unlogged-cf");
    ("r4 clobber in app code", op_ret,
     (fun built mem ->
        (* mov #7, r10  ->  mov #7, r4 *)
        let _, e =
          find_entry (stream_of built mem) (fun _ e ->
              e.S.Stream.ins
              = Isa.Two (Isa.MOV, Isa.Word, Isa.Simm 7, Isa.Dreg 10))
        in
        let w = M.Memory.peek16 mem e.S.Stream.addr in
        M.Memory.poke16 mem e.S.Stream.addr ((w land 0xFFF0) lor 4)),
     "r4-clobber");
    ("widened store bound check", op_store,
     (fun built mem ->
        (* the F5 check's cmp #(or_max+2), s gets a wider immediate *)
        let bound = built.C.Pipeline.layout.A.Layout.or_max + 2 in
        let _, e =
          find_entry (stream_of built mem) (fun _ e ->
              match e.S.Stream.ins with
              | Isa.Two (Isa.CMP, Isa.Word, Isa.Simm m, Isa.Dreg _) ->
                m = bound land 0xFFFF
              | _ -> false)
        in
        M.Memory.poke16 mem (e.S.Stream.addr + 2) ((bound + 0x10) land 0xFFFF)),
     "unchecked-store");
    ("widened entry check", op_ret,
     (fun built mem ->
        (* cmp #OR_MAX, r4 at the entry point compares a looser bound *)
        let l = built.C.Pipeline.layout in
        let w = M.Memory.peek16 mem (l.A.Layout.er_min + 2) in
        M.Memory.poke16 mem (l.A.Layout.er_min + 2) (w + 2)),
     "entry-check");
    ("widened append floor check", op_ret,
     (fun built mem ->
        (* the last append's cmp #OR_MIN, r4 floor is lowered *)
        let or_min = built.C.Pipeline.layout.A.Layout.or_min in
        let _, e =
          rfind_entry (stream_of built mem) (fun _ e ->
              e.S.Stream.ins
              = Isa.Two (Isa.CMP, Isa.Word, Isa.Simm or_min, Isa.Dreg 4))
        in
        M.Memory.poke16 mem (e.S.Stream.addr + 2) (or_min - 2)),
     "malformed-append");
    ("retargeted abort loop", op_ret,
     (fun built mem ->
        (* the abort self-jump now falls through instead of looping *)
        let _, e =
          find_entry (stream_of built mem) (fun _ e ->
              e.S.Stream.ins = Isa.Jump (Isa.JMP, -1))
        in
        M.Memory.poke16 mem e.S.Stream.addr 0x3C00),
     "abort-loop");
    ("retargeted CF log operand", op_jmp,
     (fun built mem ->
        (* the jmp's append logs a destination 2 bytes off *)
        let stream = stream_of built mem in
        let i, _ =
          find_entry stream (fun _ e ->
              match e.S.Stream.ins with
              | Isa.Jump (Isa.JMP, off) -> off <> -1
              | _ -> false)
        in
        let head = S.Stream.get stream (i - 5) in
        let v = M.Memory.peek16 mem (head.S.Stream.addr + 2) in
        M.Memory.poke16 mem (head.S.Stream.addr + 2) (v + 2)),
     "wrong-log-operand") ]

let test_mutation_corpus () =
  List.iter
    (fun (name, op, patch, expected) ->
       let built = C.Pipeline.build ~op:(Asm_parse.parse op) () in
       let clean = audit_mem built (mem_of built) in
       check_bool (name ^ ": baseline audits clean") true (S.Report.ok clean);
       let mem = mem_of built in
       patch built mem;
       let r = audit_mem built mem in
       check_bool (name ^ ": mutant rejected") false (S.Report.ok r);
       let ks = List.map S.Report.finding_kind r.S.Report.findings in
       if not (List.mem expected ks) then
         Alcotest.failf "%s: expected class %s, report was:@.%a" name expected
           S.Report.pp r)
    mutants

(* ---------------------------------------------------------------- *)
(* Dataflow mutation corpus: mutations that keep every instrumentation
   sequence syntactically recognizable — or that remove instrumentation
   the pattern scan does not own under the selective discipline — so
   only the semantic taint pass can catch them. Each mutant is audited
   three ways: the unpatched build must be clean, the patched build
   must STILL be clean with the dataflow pass switched off (proving the
   syntactic checks alone cannot see the mutation), and the full audit
   must reject it with the expected class.                             *)

let audit_mem_cfg config built mem =
  let l = built.C.Pipeline.layout in
  S.Audit.audit ~config ~mem ~er_min:l.A.Layout.er_min
    ~er_max:l.A.Layout.er_max ~or_min:l.A.Layout.or_min
    ~or_max:l.A.Layout.or_max ()

(* the configuration the verifier would audit this build against *)
let audit_config ?(dataflow = true) built =
  let selective =
    if built.C.Pipeline.selective then
      Some built.C.Pipeline.critical_ranges
    else None
  in
  { S.Audit.default_config with S.Audit.selective; dataflow }

let selective_build ?data ?(critical = []) op_src =
  let dfa_config =
    { C.Dfa.default_config with
      C.Dfa.selective = Some { C.Dfa.critical = List.map fst critical } }
  in
  C.Pipeline.build ~dfa_config
    ?data:(Option.map Asm_parse.parse data)
    ~critical ~op:(Asm_parse.parse op_src) ()

let full_build ?data op_src =
  C.Pipeline.build
    ?data:(Option.map Asm_parse.parse data)
    ~op:(Asm_parse.parse op_src) ()

let nop_word = 0x4303 (* mov r3, r3 *)

(* overwrite stream entries [i, i + count) with NOPs, word by word *)
let nop_entries mem stream i count =
  let lo = (S.Stream.get stream i).S.Stream.addr in
  let hi = (S.Stream.get stream (i + count)).S.Stream.addr in
  let a = ref lo in
  while !a < hi do
    M.Memory.poke16 mem !a nop_word;
    a := !a + 2
  done

(* NOP the whole I-Log append that follows the matching instruction *)
let nop_append_after pred built mem =
  let stream = stream_of built mem in
  let i, _ = find_entry stream (fun _ e -> pred built e.S.Stream.ins) in
  nop_entries mem stream (i + 1) S.Pattern.append_len

(* retarget the logged source register of the append following the
   matching instruction: mov rSRC, 0(r4) -> mov rNEW, 0(r4) *)
let retarget_append_src pred ~new_reg built mem =
  let stream = stream_of built mem in
  let i, _ = find_entry stream (fun _ e -> pred built e.S.Stream.ins) in
  let head = S.Stream.get stream (i + 1) in
  (match head.S.Stream.ins with
   | Isa.Two (Isa.MOV, _, Isa.Sreg _, Isa.Dindexed (0, 4)) -> ()
   | ins ->
     Alcotest.failf "expected a register-logging append head, found %a"
       Isa.pp ins);
  let w = M.Memory.peek16 mem head.S.Stream.addr in
  M.Memory.poke16 mem head.S.Stream.addr
    ((w land 0xF0FF) lor (new_reg lsl 8))

let is_mmio_read _ ins =
  ins = Isa.Two (Isa.MOV, Isa.Word, Isa.Sabsolute 0x0140, Isa.Dreg 15)

let is_crit_read built ins =
  let crit = M.Assemble.symbol built.C.Pipeline.image "crit" in
  ins = Isa.Two (Isa.MOV, Isa.Word, Isa.Sabsolute crit, Isa.Dreg 15)

(* each: (name, build, patch, expected kind, extra check on the report) *)
let df_mutants =
  [ ("selective: MMIO append removed",
     (fun () ->
        selective_build
          "op:\n    mov &0x0140, r15\n    mov r15, r10\n    ret\n"),
     nop_append_after is_mmio_read,
     "critical-not-covered",
     (fun _ -> true));
    ("full: append logs the wrong register",
     (fun () ->
        full_build
          "op:\n    mov &0x0140, r15\n    mov r15, &0x0078\n    ret\n"),
     retarget_append_src is_mmio_read ~new_reg:14,
     "untracked-flow-or",
     (fun _ -> true));
    ("selective: critical-global append removed",
     (fun () ->
        selective_build ~data:"crit:\n    .word 42\n"
          ~critical:[ ("crit", 2) ]
          "op:\n    mov &crit, r15\n    mov r15, r10\n    ret\n"),
     nop_append_after is_crit_read,
     "critical-not-covered",
     (fun _ -> true));
    ("selective: read guard widened into the OR",
     (fun () ->
        selective_build ~data:"arr:\n    .space 8\n"
          "op:\n\
          \    mov #2, r14\n\
          \    .annot load arr arr 8\n\
          \    mov arr(r14), r15\n\
          \    ret\n"),
     (fun built mem ->
        (* the guard's upper cmp #(arr+8) immediate is widened so the
           proven EA range reaches into the OR; the pattern recognizer
           still accepts the guard, only the taint pass re-checks the
           range *)
        let hi = M.Assemble.symbol built.C.Pipeline.image "arr" + 8 in
        let _, e =
          find_entry (stream_of built mem) (fun _ e ->
              match e.S.Stream.ins with
              | Isa.Two (Isa.CMP, Isa.Word, Isa.Simm m, Isa.Dreg _) ->
                m = hi
              | _ -> false)
        in
        M.Memory.poke16 mem (e.S.Stream.addr + 2)
          (built.C.Pipeline.layout.A.Layout.or_min + 0x80)),
     "overtainted-indirect",
     (fun _ -> true));
    ("full: taint laundered through a frame slot",
     (fun () ->
        full_build
          "op:\n\
          \    sub #6, r1\n\
          \    mov r1, r6\n\
          \    mov &0x0140, r15\n\
          \    mov r15, 2(r6)\n\
          \    mov 2(r6), r14\n\
          \    mov r14, &0x0078\n\
          \    add #6, r1\n\
          \    ret\n"),
     retarget_append_src is_mmio_read ~new_reg:13,
     "untracked-flow-or",
     (* the witness path must walk through the spill/reload laundering *)
     (fun r ->
        List.exists
          (fun f ->
             match f with
             | S.Report.Untracked_flow_to_or { trace; _ } -> trace <> []
             | _ -> false)
          r.S.Report.findings)) ]

let test_dataflow_mutation_corpus () =
  List.iter
    (fun (name, mk, patch, expected, extra) ->
       let built = mk () in
       let clean = audit_mem_cfg (audit_config built) built (mem_of built) in
       if not (S.Report.ok clean) then
         Alcotest.failf "%s: baseline not clean:@.%a" name S.Report.pp clean;
       let mem = mem_of built in
       patch built mem;
       let syntactic =
         audit_mem_cfg (audit_config ~dataflow:false built) built mem
       in
       if not (S.Report.ok syntactic) then
         Alcotest.failf
           "%s: the pattern scan alone already sees the mutation \
            (it must be dataflow-only):@.%a"
           name S.Report.pp syntactic;
       let r = audit_mem_cfg (audit_config built) built mem in
       check_bool (name ^ ": mutant rejected") false (S.Report.ok r);
       let ks = List.map S.Report.finding_kind r.S.Report.findings in
       if not (List.mem expected ks) then
         Alcotest.failf "%s: expected class %s, report was:@.%a" name
           expected S.Report.pp r;
       check_bool (name ^ ": witness check") true (extra r))
    df_mutants

(* The gating stage: a plan built with ~audit over a doctored image
   rejects every report up front with bad-instrumentation — before the
   token is even looked at. *)
let test_audit_gates_verification () =
  let built, report, _ = Lazy.force benign in
  let patched_segments =
    List.map
      (fun (base, data) ->
         let l = built.C.Pipeline.layout in
         if base > l.A.Layout.er_max || base + String.length data <= l.A.Layout.er_min
         then (base, data)
         else begin
           (* find a `mov @sp, 0(r4)` append head and retarget it to r5 *)
           let mem = mem_of built in
           let _, e =
             find_entry (stream_of built mem) (fun _ e ->
                 match e.S.Stream.ins with
                 | Isa.Two (Isa.MOV, _, Isa.Sindirect 1, Isa.Dindexed (0, 4)) ->
                   true
                 | _ -> false)
           in
           let off = e.S.Stream.addr - base in
           let b = Bytes.of_string data in
           Bytes.set b off
             (Char.chr ((Char.code (Bytes.get b off) land 0xF0) lor 5));
           (base, Bytes.to_string b)
         end)
      built.C.Pipeline.image.M.Assemble.segments
  in
  let doctored =
    { built with
      C.Pipeline.image =
        { built.C.Pipeline.image with M.Assemble.segments = patched_segments } }
  in
  let plan = C.Verifier.plan ~audit:S.Audit.default_config doctored in
  let outcome = C.Verifier.verify_plan plan report in
  check_bool "doctored binary rejected" true (not outcome.C.Verifier.accepted);
  Alcotest.(check (list string)) "rejected by the audit, pre-token"
    [ "bad-instrumentation" ] (kinds outcome);
  (* the same report against the genuine binary still verifies *)
  let genuine = C.Verifier.plan ~audit:S.Audit.default_config built in
  check_bool "genuine binary still accepted" true
    (C.Verifier.verify_plan genuine report).C.Verifier.accepted

(* A selective build needs no explicit ~audit: the reduced discipline
   makes the audit (including the dataflow pass) a hard precondition,
   so the plan runs it unconditionally and a doctored selective image
   is rejected before any replay — the same report verifies against
   the genuine image. *)
let test_selective_plan_always_gates () =
  let run = Apps.run ~selective:true Apps.fire_sensor in
  let built = run.Apps.built in
  let report = A.Device.attest run.Apps.device ~challenge:"sel-gate" in
  let genuine = C.Verifier.plan built in
  check_bool "benign selective run verifies" true
    (C.Verifier.verify_plan genuine report).C.Verifier.accepted;
  (* NOP one MMIO append out of the image, rebuilding the segments from
     patched memory; the pattern scan cannot see it (selective cedes
     static-read coverage to the dataflow pass) *)
  let mem = mem_of built in
  let stream = stream_of built mem in
  let i, _ =
    find_entry stream (fun _ e ->
        match e.S.Stream.ins with
        | Isa.Two (Isa.MOV, Isa.Word, Isa.Sabsolute a, Isa.Dreg _) ->
          a < 0x0200
        | _ -> false)
  in
  nop_entries mem stream (i + 1) S.Pattern.append_len;
  let patched_segments =
    List.map
      (fun (base, data) ->
         ( base,
           String.init (String.length data) (fun k ->
               Char.chr (M.Memory.peek8 mem (base + k))) ))
      built.C.Pipeline.image.M.Assemble.segments
  in
  let doctored =
    { built with
      C.Pipeline.image =
        { built.C.Pipeline.image with
          M.Assemble.segments = patched_segments } }
  in
  let outcome = C.Verifier.verify_plan (C.Verifier.plan doctored) report in
  check_bool "doctored selective binary rejected" true
    (not outcome.C.Verifier.accepted);
  Alcotest.(check (list string)) "rejected by the forced audit, pre-token"
    [ "bad-instrumentation" ] (kinds outcome)

(* ---------------------------------------------------------------- *)
(* Scratch-arena equivalence: replaying through one reused
   Verifier.scratch (the fleet engine's per-domain arena) must be
   observationally identical to the fresh-sandbox path, for benign and
   tampered reports alike. A single arena is deliberately shared across
   the whole random sequence, so residue from any earlier replay —
   dirty RAM pages, CPU registers, shadow-stack state, trace cursor —
   would surface as a divergence in a later case if reset were
   incomplete.                                                        *)

let prop_scratch_equivalence =
  let built, report, used = Lazy.force benign in
  let plan = plan_for built in
  let scratch = C.Verifier.scratch () in
  let len = String.length report.A.Pox.or_data in
  let mutate (which, a, b) =
    match which with
    | 0 -> report                              (* benign, accepted *)
    | 1 ->
      (* network attacker: one bit flip, token no longer verifies *)
      let or_data = Bytes.of_string report.A.Pox.or_data in
      let byte = a mod len and bit = b mod 8 in
      Bytes.set or_data byte
        (Char.chr (Char.code (Bytes.get or_data byte) lxor (1 lsl bit)));
      with_or_data report or_data
    | 2 ->
      (* key-holder: truncated log under a valid token (malformed path) *)
      forge_token built
        { report with
          A.Pox.or_data = String.sub report.A.Pox.or_data 0 (a mod len) }
    | _ ->
      (* key-holder: one log entry flipped and re-MACed (replay path) *)
      let k = a mod used in
      let or_data = Bytes.of_string report.A.Pox.or_data in
      set_entry_word or_data (entry_offset report k)
        (entry_word report k lxor 0x8000);
      forge_token built (with_or_data report or_data)
  in
  QCheck.Test.make
    ~name:"scratch-arena replay is bit-identical to fresh replay"
    ~count:120
    QCheck.(triple (int_bound 3) (int_bound 20_000) (int_bound 20_000))
    (fun case ->
       let r = mutate case in
       let fresh = C.Verifier.verify_plan plan r in
       let reused = C.Verifier.verify_plan ~scratch plan r in
       fresh.C.Verifier.accepted = reused.C.Verifier.accepted
       && fresh.C.Verifier.findings = reused.C.Verifier.findings
       && (match (fresh.C.Verifier.trace, reused.C.Verifier.trace) with
           | Some a, Some b ->
             a.C.Verifier.step_count = b.C.Verifier.step_count
             && a.C.Verifier.cf_dests = b.C.Verifier.cf_dests
             && a.C.Verifier.inputs = b.C.Verifier.inputs
           | None, None -> true
           | _ -> false))

let suites =
  [ ("adversarial",
     [ QCheck_alcotest.to_alcotest prop_bit_flip;
       QCheck_alcotest.to_alcotest prop_truncation;
       QCheck_alcotest.to_alcotest prop_entry_swap;
       QCheck_alcotest.to_alcotest prop_scratch_equivalence;
       Alcotest.test_case "forged-MAC entry flips" `Quick
         test_forged_mac_entry_flips;
       Alcotest.test_case "forged-MAC truncation is malformed" `Quick
         test_forged_mac_truncation_is_malformed;
       Alcotest.test_case "empty shadow stack reported" `Quick
         test_empty_shadow_stack_reported;
       Alcotest.test_case "auditor mutation corpus" `Quick
         test_mutation_corpus;
       Alcotest.test_case "dataflow mutation corpus" `Quick
         test_dataflow_mutation_corpus;
       Alcotest.test_case "audit gates verification" `Quick
         test_audit_gates_verification;
       Alcotest.test_case "selective plan always gates" `Quick
         test_selective_plan_always_gates ]) ]
