(* Oplog views, pipeline contracts and verifier edge cases. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module Asm_parse = M.Asm_parse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_op = "op:\n    mov r15, r5\n    ret\n"

let build ?variant ?or_min ?data op =
  C.Pipeline.build ?variant ?or_min
    ?data:(Option.map Asm_parse.parse data)
    ~op:(Asm_parse.parse op) ()

(* ------------------------------------------------------------- *)
(* Oplog.                                                          *)

let run_tiny args =
  let built = build tiny_op in
  let device = C.Pipeline.device built in
  let result = A.Device.run_operation ~args device in
  check_bool "completed" true result.A.Device.completed;
  (built, device)

let test_oplog_args_roundtrip () =
  let _, device = run_tiny [ 0x1111; 0x2222; 0x3333 ] in
  let oplog = C.Oplog.of_device device in
  check_int "arg 0 (r15)" 0x1111 (C.Oplog.arg_value oplog 0);
  check_int "arg 1 (r14)" 0x2222 (C.Oplog.arg_value oplog 1);
  check_int "arg 2 (r13)" 0x3333 (C.Oplog.arg_value oplog 2);
  Alcotest.(check (list int)) "args list is r8..r15"
    [ 0; 0; 0; 0; 0; 0x3333; 0x2222; 0x1111 ]
    (C.Oplog.args oplog)

let test_oplog_saved_sp () =
  let built, device = run_tiny [ 1 ] in
  let oplog = C.Oplog.of_device device in
  (* the caller shim's call pushed one word below the stack top *)
  check_int "saved sp" (built.C.Pipeline.layout.A.Layout.stack_top - 2)
    (C.Oplog.saved_sp oplog)

let test_oplog_entries_down_to () =
  let _, device = run_tiny [ 7 ] in
  let oplog = C.Oplog.of_device device in
  let final_r4 = M.Cpu.get_reg (A.Device.cpu device) 4 in
  let entries = C.Oplog.entries_down_to oplog ~final_r4 in
  check_bool "at least F3 + final ret" true (List.length entries >= 10);
  check_int "used_bytes consistent" (2 * List.length entries)
    (C.Oplog.used_bytes oplog ~final_r4);
  (* entry 8 is r15 = first argument *)
  check_int "arg in entry stream" 7 (List.nth entries 8)

let test_oplog_of_report_matches_device () =
  let _, device = run_tiny [ 9 ] in
  let report = A.Device.attest device ~challenge:"x" in
  let from_report = C.Oplog.of_report report in
  let from_device = C.Oplog.of_device device in
  check_int "same word" (C.Oplog.entry from_device 3) (C.Oplog.entry from_report 3);
  check_int "capacity" (C.Oplog.capacity_entries from_device)
    (C.Oplog.capacity_entries from_report)

(* Bounds hardening: final_r4 is an attacker-controlled report field and
   must never yield negative counts or out-of-window reads. *)

let attested_oplog () =
  let _, device = run_tiny [ 7 ] in
  let report = A.Device.attest device ~challenge:"x" in
  (C.Oplog.of_report report, report)

let test_oplog_word_at_bounds () =
  let oplog, _ = attested_oplog () in
  let lo = C.Oplog.or_min oplog and hi = C.Oplog.or_max oplog in
  check_int "word at or_min" (C.Oplog.word_at oplog lo) (C.Oplog.word_at oplog lo);
  (match C.Oplog.word_at oplog (lo - 2) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "word_at below OR accepted");
  (match C.Oplog.word_at oplog (hi + 2) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "word_at above OR accepted")

let test_oplog_entry_bounds () =
  let oplog, _ = attested_oplog () in
  (match C.Oplog.entry oplog (-1) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative entry index accepted");
  (match C.Oplog.entry oplog (C.Oplog.capacity_entries oplog + 1) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "entry index past capacity accepted")

let test_oplog_used_bytes_clamped () =
  let oplog, _ = attested_oplog () in
  let lo = C.Oplog.or_min oplog and hi = C.Oplog.or_max oplog in
  (* final_r4 above the log base: an empty (or lying) log, never negative *)
  check_int "r4 above or_max" 0 (C.Oplog.used_bytes oplog ~final_r4:(hi + 8));
  check_int "r4 at or_max" 0 (C.Oplog.used_bytes oplog ~final_r4:hi);
  (* final_r4 below OR: at most the whole window *)
  check_int "r4 below or_min" (hi + 2 - lo)
    (C.Oplog.used_bytes oplog ~final_r4:(lo - 100));
  check_int "r4 wildly out of range" (hi + 2 - lo)
    (C.Oplog.used_bytes oplog ~final_r4:(-4))

let test_oplog_entries_down_to_clamped () =
  let oplog, _ = attested_oplog () in
  let lo = C.Oplog.or_min oplog and hi = C.Oplog.or_max oplog in
  Alcotest.(check (list int)) "r4 above or_max -> no entries" []
    (C.Oplog.entries_down_to oplog ~final_r4:(hi + 10));
  check_int "r4 below or_min -> capacity, no exception"
    (C.Oplog.capacity_entries oplog)
    (List.length (C.Oplog.entries_down_to oplog ~final_r4:(lo - 50)))

(* ------------------------------------------------------------- *)
(* Pipeline.                                                       *)

let test_pipeline_fingerprint_stable () =
  let a = build tiny_op and b = build tiny_op in
  Alcotest.(check string) "same build, same fingerprint"
    (C.Pipeline.fingerprint a) (C.Pipeline.fingerprint b);
  let c = build "op:\n    mov r15, r6\n    ret\n" in
  check_bool "different op, different fingerprint" true
    (C.Pipeline.fingerprint a <> C.Pipeline.fingerprint c)

let test_pipeline_rejects_no_ret () =
  match build "op:\n    mov r15, r5\n" with
  | exception C.Pipeline.Error _ -> ()
  | _ -> Alcotest.fail "operation without ret accepted"

let test_pipeline_provides_op_exit () =
  let built = build "op:\n    br #__op_exit\n" in
  check_bool "op exit symbol" true
    (M.Assemble.symbol_opt built.C.Pipeline.image C.Pipeline.op_exit_symbol
     <> None)

let test_pipeline_er_exit_is_last_ret () =
  let built = build tiny_op in
  let l = built.C.Pipeline.layout in
  (* the exit instruction must decode as ret *)
  let mem = M.Memory.create () in
  M.Assemble.load built.C.Pipeline.image mem;
  (match M.Disasm.instruction_at mem l.A.Layout.er_exit with
   | Some (i, _) -> check_bool "exit is ret" true (C.Pipeline.concrete_is_ret i)
   | None -> Alcotest.fail "er_exit not decodable")

let test_pipeline_rejects_or_collision () =
  (* data segment reaching into OR must be refused *)
  let big_data = "blob:\n    .space 600\n" in
  match build ~data:big_data tiny_op with
  | exception C.Pipeline.Error _ -> ()
  | _ -> Alcotest.fail "data/OR collision accepted"

let test_pipeline_rejects_static_store_to_or () =
  match build "op:\n    mov r15, &0x0480\n    ret\n" with
  | exception C.Pipeline.Error _ -> ()
  | _ -> Alcotest.fail "static store into OR accepted"

let test_pipeline_variants_share_layout_defaults () =
  let a = build ~variant:C.Pipeline.Unmodified tiny_op in
  let b = build ~variant:C.Pipeline.Full tiny_op in
  check_int "same or_min" a.C.Pipeline.layout.A.Layout.or_min
    b.C.Pipeline.layout.A.Layout.or_min;
  check_bool "instrumented ER is larger" true
    (C.Pipeline.code_size_bytes b > C.Pipeline.code_size_bytes a)

let test_pipeline_expected_er_matches_memory () =
  let built = build tiny_op in
  let device = C.Pipeline.device built in
  let l = built.C.Pipeline.layout in
  let actual =
    M.Memory.dump (A.Device.memory device) ~addr:l.A.Layout.er_min
      ~len:(l.A.Layout.er_max - l.A.Layout.er_min + 1)
  in
  check_bool "expected_er equals loaded ER" true
    (String.equal actual built.C.Pipeline.expected_er)

(* ------------------------------------------------------------- *)
(* Verifier edge cases.                                            *)

let test_verifier_requires_full_variant () =
  let built = build ~variant:C.Pipeline.Cfa_only tiny_op in
  match C.Verifier.create built with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "verifier accepted a CFA-only build"

let test_verifier_wrong_layout () =
  let built = build tiny_op in
  let device = C.Pipeline.device built in
  ignore (A.Device.run_operation ~args:[ 1 ] device);
  let report = A.Device.attest device ~challenge:"x" in
  let verifier = C.Verifier.create built in
  let doctored = { report with A.Pox.er_min = report.A.Pox.er_min + 2 } in
  let outcome = C.Verifier.verify verifier doctored in
  check_bool "layout mismatch rejected" true (not outcome.C.Verifier.accepted);
  (match outcome.C.Verifier.findings with
   | [ C.Verifier.Wrong_layout _ ] -> ()
   | _ -> Alcotest.fail "expected a layout finding")

let test_verifier_abort_loop_rejected () =
  (* a run that trips the instrumentation abort (r4 not initialised):
     call the operation directly rather than through the shim *)
  let built = build tiny_op in
  let device = C.Pipeline.device built in
  let cpu = A.Device.cpu device in
  M.Cpu.set_reg cpu M.Isa.pc
    (M.Assemble.symbol built.C.Pipeline.image C.Pipeline.op_start_symbol);
  M.Cpu.set_reg cpu M.Isa.sp 0x09FE;
  M.Cpu.set_reg cpu 4 0x1234; (* bogus log pointer *)
  let mon = A.Device.monitor device in
  let halted = M.Cpu.run cpu ~max_steps:1000 (A.Monitor.observe mon) in
  (match halted with
   | Some (M.Cpu.Self_jump a) ->
     check_int "halted in the abort loop" a
       (M.Assemble.symbol built.C.Pipeline.image
          Dialed_tinycfa.Instrument.abort_label)
   | _ -> Alcotest.fail "expected an abort halt");
  check_bool "exec stays low" false (A.Monitor.exec_flag mon);
  let report = A.Device.attest device ~challenge:"x" in
  let outcome = C.Verifier.verify (C.Verifier.create built) report in
  check_bool "rejected" true (not outcome.C.Verifier.accepted)

let test_log_overflow_aborts () =
  (* a loop whose CF logging exceeds OR capacity must hit the guard and
     abort rather than corrupt memory below OR *)
  let op = {|
    op:
        mov #400, r5
    loop:
        dec r5
        tst r5
        jnz loop
        ret
    |}
  in
  let built = build op in
  let device = C.Pipeline.device built in
  let result = A.Device.run_operation ~args:[] device in
  check_bool "did not complete normally" true (not result.A.Device.completed);
  check_bool "exec low" false (A.Monitor.exec_flag (A.Device.monitor device));
  (* nothing was written below OR_MIN *)
  let l = built.C.Pipeline.layout in
  check_int "word below OR untouched" 0
    (M.Memory.peek16 (A.Device.memory device) (l.A.Layout.or_min - 2))

let suites =
  [ ("oplog-pipeline",
     [ Alcotest.test_case "oplog args roundtrip" `Quick test_oplog_args_roundtrip;
       Alcotest.test_case "oplog saved sp" `Quick test_oplog_saved_sp;
       Alcotest.test_case "oplog entries" `Quick test_oplog_entries_down_to;
       Alcotest.test_case "oplog report = device" `Quick test_oplog_of_report_matches_device;
       Alcotest.test_case "oplog word_at bounds" `Quick test_oplog_word_at_bounds;
       Alcotest.test_case "oplog entry bounds" `Quick test_oplog_entry_bounds;
       Alcotest.test_case "oplog used_bytes clamped" `Quick test_oplog_used_bytes_clamped;
       Alcotest.test_case "oplog entries clamped" `Quick test_oplog_entries_down_to_clamped;
       Alcotest.test_case "pipeline: fingerprint" `Quick test_pipeline_fingerprint_stable;
       Alcotest.test_case "pipeline: no ret" `Quick test_pipeline_rejects_no_ret;
       Alcotest.test_case "pipeline: op exit" `Quick test_pipeline_provides_op_exit;
       Alcotest.test_case "pipeline: er_exit" `Quick test_pipeline_er_exit_is_last_ret;
       Alcotest.test_case "pipeline: OR collision" `Quick test_pipeline_rejects_or_collision;
       Alcotest.test_case "pipeline: store to OR" `Quick test_pipeline_rejects_static_store_to_or;
       Alcotest.test_case "pipeline: variants" `Quick test_pipeline_variants_share_layout_defaults;
       Alcotest.test_case "pipeline: expected ER" `Quick test_pipeline_expected_er_matches_memory;
       Alcotest.test_case "verifier: needs Full" `Quick test_verifier_requires_full_variant;
       Alcotest.test_case "verifier: wrong layout" `Quick test_verifier_wrong_layout;
       Alcotest.test_case "verifier: abort loop" `Quick test_verifier_abort_loop_rejected;
       Alcotest.test_case "log overflow aborts" `Quick test_log_overflow_aborts ]) ]
