(* Swarm load generation and pipelined/sequential equivalence: the
   windowed session machine must be observationally identical to the
   single-shot protocol (same verdicts, same per-session order), stay
   fair under a flooding peer, and keep its stats snapshot consistent
   while a swarm hammers it. *)

module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module N = Dialed_net
module Apps = Dialed_apps.Apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fire_sensor = List.find (fun a -> a.Apps.name = "fire-sensor") Apps.all

let built =
  lazy
    (let compiled =
       Dialed_minic.Minic.compile ~entry:fire_sensor.Apps.entry
         fire_sensor.Apps.source
     in
     C.Pipeline.build ~variant:C.Pipeline.Full
       ~data:compiled.Dialed_minic.Minic.data
       ~op:compiled.Dialed_minic.Minic.op
       ~or_min:fire_sensor.Apps.or_min ())

let make_device () =
  let d = C.Pipeline.device (Lazy.force built) in
  fire_sensor.Apps.setup d;
  d

let gateway_config engine =
  { N.Server.default_config with
    N.Server.engine; domains = 1; window = 4; read_deadline = Some 5.0;
    max_conns = 128; args = fire_sensor.Apps.benign_args }

let with_gateway ?config ~engine f =
  let config =
    match config with Some c -> c | None -> gateway_config engine
  in
  let plan = F.Plan.of_built (Lazy.force built) in
  let listener, dial = N.Transport.loopback_listener () in
  let server = N.Server.create ~config ~plan listener in
  N.Server.start server;
  Fun.protect
    ~finally:(fun () -> ignore (N.Server.stop server))
    (fun () -> f ~server ~dial)

let client_config =
  { N.Client.default_config with
    N.Client.read_deadline = Some 5.0; backoff_base = 0.01;
    backoff_cap = 0.05 }

let flip_or_data (r : A.Pox.report) =
  let b = Bytes.of_string r.A.Pox.or_data in
  let j = Bytes.length b / 2 in
  Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor 0x01));
  { r with A.Pox.or_data = Bytes.to_string b }

(* --------------------------------------------------------------- *)
(* Property: a pipelined session and a sequence of single-shot rounds
   with the same per-round tampering produce the same per-round
   verdicts, in the same per-session order, for any window size.     *)

let round_key accepted findings =
  (accepted, List.sort compare (List.map fst findings))

let sequential_run ~dial ~tamper rounds =
  let conn = dial () in
  let i = ref 0 in
  let mangle r =
    let k = !i in
    incr i;
    if tamper.(k) then flip_or_data r else r
  in
  let config =
    { client_config with N.Client.attempts = 1; mangle = Some mangle }
  in
  let out =
    N.Client.attest_rounds ~config ~device:make_device
      ~device_id:"dev-seq" ~rounds conn
  in
  N.Transport.close conn;
  List.map
    (fun (r : N.Client.round) -> round_key r.N.Client.accepted r.N.Client.findings)
    out

let pipelined_run ~dial ~tamper ~window rounds =
  let conn = dial () in
  let respond ~seq req =
    let report, _ = C.Protocol.prover_execute (make_device ()) req in
    if tamper.(seq) then flip_or_data report else report
  in
  let session =
    N.Client.attest_pipelined ~config:client_config ~window ~respond
      ~device:make_device ~device_id:"dev-pipe" ~rounds conn
  in
  N.Transport.close conn;
  Array.to_list
    (Array.map
       (fun (r : N.Client.pipelined_round) ->
          round_key r.N.Client.p_accepted r.N.Client.p_findings)
       session.N.Client.results)

let prop_pipelined_equals_sequential ~tag engine =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "pipelined session = sequential single-shot (verdicts and order) [%s]"
         tag)
    ~count:8
    QCheck.(pair (int_range 1 5) (list_of_size (Gen.int_range 1 6) bool))
    (fun (window, tamper_list) ->
       let rounds = List.length tamper_list in
       let tamper = Array.of_list tamper_list in
       with_gateway ~engine (fun ~server:_ ~dial ->
           let seq = sequential_run ~dial ~tamper rounds in
           let pipe = pipelined_run ~dial ~tamper ~window rounds in
           seq = pipe))

(* The two server engines must be observationally interchangeable: the
   same tampered session yields the same verdicts in the same order
   (list equality subsumes multiset equality) whichever engine serves
   it. *)
let prop_engines_equivalent =
  QCheck.Test.make
    ~name:"evloop gateway = threads gateway (verdicts and order)"
    ~count:6
    QCheck.(pair (int_range 1 5) (list_of_size (Gen.int_range 1 6) bool))
    (fun (window, tamper_list) ->
       let rounds = List.length tamper_list in
       let tamper = Array.of_list tamper_list in
       let under engine =
         with_gateway ~engine (fun ~server:_ ~dial ->
             ( sequential_run ~dial ~tamper rounds,
               pipelined_run ~dial ~tamper ~window rounds ))
       in
       under N.Server.Evloop = under N.Server.Threads)

(* --------------------------------------------------------------- *)
(* Swarm smoke: many provers over loopback, all accepted.            *)

let test_swarm_loopback engine () =
  with_gateway ~engine (fun ~server ~dial ->
      let config =
        { N.Swarm.default_config with
          N.Swarm.clients = 12; rounds = 3; window = 4; concurrency = 6;
          client = client_config }
      in
      let respond ~client:_ ~shape:_ =
        N.Swarm.cheap_responder ~build:make_device ()
      in
      let outcome = N.Swarm.run ~config ~dial ~respond () in
      check_int "no client failed" 0 outcome.N.Swarm.clients_failed;
      check_int "all rounds accepted" 36 outcome.N.Swarm.rounds_accepted;
      check_int "nothing rejected" 0 outcome.N.Swarm.rounds_rejected;
      check_bool "throughput measured" true (outcome.N.Swarm.throughput > 0.0);
      check_int "every latency recorded" 36
        (Array.length outcome.N.Swarm.latencies);
      check_bool "p99 >= p50" true
        (N.Swarm.latency_p outcome 99.0 >= N.Swarm.latency_p outcome 50.0);
      let stats = N.Server.stop server in
      check_int "server agrees on accepts" 36 stats.N.Server.verdicts_accepted)

(* With the cheap responder each prover's reports share one execution,
   but every report is still individually replayed by the engine:
   batch_size = clients * rounds, not clients. *)
let test_swarm_engine_sees_all_reports engine () =
  with_gateway ~engine (fun ~server ~dial ->
      let config =
        { N.Swarm.default_config with
          N.Swarm.clients = 3; rounds = 2; window = 2; concurrency = 3;
          client = client_config }
      in
      let respond ~client:_ ~shape:_ =
        N.Swarm.cheap_responder ~build:make_device ()
      in
      let outcome = N.Swarm.run ~config ~dial ~respond () in
      check_int "all accepted" 6 outcome.N.Swarm.rounds_accepted;
      let stats = N.Server.stop server in
      check_int "engine saw every report" 6
        stats.N.Server.verify.F.Metrics.batch_size)

(* --------------------------------------------------------------- *)
(* Fairness: per-session rate limiting lands on the flooder, never on
   the honest provers sharing the gateway.                           *)

let test_fairness_flooder_vs_honest engine () =
  let config =
    { (gateway_config engine) with N.Server.rate = Some 4.0; burst = 2.0 }
  in
  with_gateway ~config ~engine (fun ~server ~dial ->
      let honest_failures = Atomic.make 0 in
      let honest_busy = Atomic.make 0 in
      let honest n =
        Thread.create
          (fun () ->
             let conn = dial () in
             match
               N.Client.attest_pipelined ~config:client_config ~window:2
                 ~device:make_device
                 ~device_id:(Printf.sprintf "dev-honest-%d" n) ~rounds:2 conn
             with
             | session ->
               N.Transport.close conn;
               Atomic.fetch_and_add honest_busy
                 session.N.Client.busy_bounces |> ignore;
               if
                 not
                   (Array.for_all
                      (fun (r : N.Client.pipelined_round) ->
                         r.N.Client.p_accepted)
                      session.N.Client.results)
               then Atomic.incr honest_failures
             | exception _ ->
               N.Transport.close conn;
               Atomic.incr honest_failures)
          ()
      in
      (* the flooder spams Ready far over its own token bucket and
         counts the Busy bounces it gets back *)
      let flooder_busy = ref 0 in
      let flooder =
        Thread.create
          (fun () ->
             let conn = dial () in
             let chan = N.Chan.create conn in
             N.Chan.send chan
               (N.Codec.Hello_ex { device_id = "dev-flood"; window = 8; firmware = "" });
             (match N.Chan.recv chan ~deadline:5.0 () with
              | Ok (Some (N.Codec.Welcome _)) -> ()
              | _ -> Alcotest.fail "flooder got no Welcome");
             for _ = 1 to 30 do
               N.Chan.send chan N.Codec.Ready
             done;
             for _ = 1 to 30 do
               match N.Chan.recv chan ~deadline:5.0 () with
               | Ok (Some (N.Codec.Busy _)) -> incr flooder_busy
               | Ok (Some (N.Codec.Request_seq _)) -> ()
               | _ -> Alcotest.fail "flooder lost its connection"
             done;
             N.Transport.close conn)
          ()
      in
      let honests = List.init 4 honest in
      Thread.join flooder;
      List.iter Thread.join honests;
      check_int "every honest prover completed" 0
        (Atomic.get honest_failures);
      check_int "honest provers never bounced" 0 (Atomic.get honest_busy);
      check_bool "flooder was bounced" true (!flooder_busy > 0);
      let stats = N.Server.stop server in
      (* every rate-limit event the server counted was observed by the
         flooder: the defense never hit anyone else *)
      check_int "rate_limited lands only on the flooder" !flooder_busy
        (stats.N.Server.rate_limited + stats.N.Server.window_overflow))

(* --------------------------------------------------------------- *)
(* Stats under concurrency: poll the snapshot while a swarm runs and
   assert cross-counter invariants in every observation.             *)

let test_stats_snapshot_consistent_under_load engine () =
  with_gateway ~engine (fun ~server ~dial ->
      let stop_polling = Atomic.make false in
      let violations = ref [] in
      let polls = ref 0 in
      let last_requests = ref 0 in
      let poller =
        Thread.create
          (fun () ->
             while not (Atomic.get stop_polling) do
               let s = N.Server.stats server in
               incr polls;
               let bad what = violations := what :: !violations in
               if
                 s.N.Server.verdicts_accepted + s.N.Server.verdicts_rejected
                 > s.N.Server.reports_received
               then bad "verdicts > reports";
               if s.N.Server.reports_received > s.N.Server.requests_issued
               then bad "reports > requests (honest swarm)";
               if s.N.Server.requests_issued < !last_requests then
                 bad "requests_issued went backwards";
               last_requests := s.N.Server.requests_issued;
               if s.N.Server.sessions_active > s.N.Server.connections_active
               then bad "sessions > connections";
               if s.N.Server.connections_active < 0 then
                 bad "negative active connections";
               Thread.yield ()
             done)
          ()
      in
      let config =
        { N.Swarm.default_config with
          N.Swarm.clients = 16; rounds = 3; window = 4; concurrency = 8;
          client = client_config }
      in
      let respond ~client:_ ~shape:_ =
        N.Swarm.cheap_responder ~build:make_device ()
      in
      let outcome = N.Swarm.run ~config ~dial ~respond () in
      Atomic.set stop_polling true;
      Thread.join poller;
      check_int "swarm completed clean" 0 outcome.N.Swarm.clients_failed;
      check_int "all rounds accepted" 48 outcome.N.Swarm.rounds_accepted;
      check_bool "poller actually ran" true (!polls > 0);
      (match !violations with
       | [] -> ()
       | v -> Alcotest.failf "stats invariants violated: %s"
                (String.concat ", " v));
      (* final snapshot adds up *)
      let s = N.Server.stop server in
      check_int "every report got a verdict" s.N.Server.reports_received
        (s.N.Server.verdicts_accepted + s.N.Server.verdicts_rejected))

(* --------------------------------------------------------------- *)
(* Multiplexed swarm: every session held open simultaneously by a few
   evloop-driven worker threads — the c10k load shape, scaled down.   *)

let test_swarm_multiplexed engine () =
  with_gateway ~engine (fun ~server ~dial ->
      let config =
        { N.Swarm.default_config with
          N.Swarm.clients = 12; rounds = 3; window = 4; concurrency = 4;
          client = client_config }
      in
      let respond ~client:_ ~shape:_ =
        N.Swarm.cheap_responder ~build:make_device ()
      in
      let outcome = N.Swarm.run_multiplexed ~config ~dial ~respond () in
      check_int "no client failed" 0 outcome.N.Swarm.clients_failed;
      check_int "all rounds accepted" 36 outcome.N.Swarm.rounds_accepted;
      check_int "nothing rejected" 0 outcome.N.Swarm.rounds_rejected;
      check_int "sessions multiplexed per thread" 3
        outcome.N.Swarm.clients_per_thread;
      check_int "every latency recorded" 36
        (Array.length outcome.N.Swarm.latencies);
      let stats = N.Server.stop server in
      check_int "server agrees on accepts" 36
        stats.N.Server.verdicts_accepted;
      (* the start barrier held every session open before the first
         round was played *)
      check_bool "peak connections >= clients" true
        (stats.N.Server.connections_peak >= 12))

let test_swarm_multiplexed_tampered () =
  with_gateway ~engine:N.Server.Evloop (fun ~server:_ ~dial ->
      let config =
        { N.Swarm.default_config with
          N.Swarm.clients = 4; rounds = 2; window = 2; concurrency = 2;
          client = client_config }
      in
      let respond ~client ~shape:_ =
        let inner = N.Swarm.cheap_responder ~build:make_device () in
        fun ~seq req ->
          let r = inner ~seq req in
          if client = 0 && seq = 0 then flip_or_data r else r
      in
      let outcome = N.Swarm.run_multiplexed ~config ~dial ~respond () in
      check_int "no client failed" 0 outcome.N.Swarm.clients_failed;
      check_int "one round rejected" 1 outcome.N.Swarm.rounds_rejected;
      check_int "rest accepted" 7 outcome.N.Swarm.rounds_accepted)

let engines = [ ("evloop", N.Server.Evloop); ("threads", N.Server.Threads) ]

let suites =
  [ ("net-swarm",
     List.concat_map
       (fun (tag, engine) ->
          let t name f =
            Alcotest.test_case (name ^ " [" ^ tag ^ "]") `Quick (f engine)
          in
          [ QCheck_alcotest.to_alcotest
              (prop_pipelined_equals_sequential ~tag engine);
            t "swarm over loopback" test_swarm_loopback;
            t "engine sees every report" test_swarm_engine_sees_all_reports;
            t "flooder cannot starve honest provers"
              test_fairness_flooder_vs_honest;
            t "stats consistent under load"
              test_stats_snapshot_consistent_under_load;
            t "multiplexed swarm holds all sessions" test_swarm_multiplexed ])
       engines
     @ [ QCheck_alcotest.to_alcotest prop_engines_equivalent;
         Alcotest.test_case "multiplexed swarm surfaces rejections" `Quick
           test_swarm_multiplexed_tampered ]) ]
