(* Replay-engine equivalence: the optimized engine (predecoded ER,
   packed trace buffer, [keep_trace:false]) must be verdict-identical to
   the reference path (fresh byte-level decode, full step retention) on
   benign and adversarial reports, and the fleet engine must agree
   regardless of domain count.

   Also pins the bad-opcode regression: a report whose replay fetches an
   undecodable word must be rejected with [Replay_failed] only — the old
   engine materialized a placeholder instruction for the faulting step
   and could file a spurious shadow-stack finding on top. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module Apps = Dialed_apps.Apps
module Asm_parse = M.Asm_parse
module Hmac = Dialed_crypto.Hmac

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* re-MAC a doctored report with the device key (Pox.issue binding order) *)
let le16 v =
  Printf.sprintf "%c%c" (Char.chr (v land 0xFF))
    (Char.chr ((v lsr 8) land 0xFF))

let forge_token built (r : A.Pox.report) =
  let token =
    Hmac.mac_parts ~key:A.Device.default_key
      [ r.A.Pox.challenge;
        le16 r.A.Pox.er_min; le16 r.A.Pox.er_max; le16 r.A.Pox.er_exit;
        le16 r.A.Pox.or_min; le16 r.A.Pox.or_max;
        (if r.A.Pox.exec then "\001" else "\000");
        built.C.Pipeline.expected_er;
        r.A.Pox.or_data ]
  in
  { r with A.Pox.token }

let flip_or_word ~re_mac built (report : A.Pox.report) k =
  let off = report.A.Pox.or_max - (2 * k) - report.A.Pox.or_min in
  let or_data = Bytes.of_string report.A.Pox.or_data in
  Bytes.set or_data off
    (Char.chr (Char.code (Bytes.get or_data off) lxor 0x80));
  let r = { report with A.Pox.or_data = Bytes.to_string or_data } in
  if re_mac then forge_token built r else r

(* benign fire-sensor run plus tampered variants covering every verdict
   class: accept, bad-token, log-divergence, malformed/replay-failed *)
let corpus =
  lazy
    (let run = Apps.run Apps.fire_sensor in
     let built = run.Apps.built in
     let report = A.Device.attest run.Apps.device ~challenge:"equiv" in
     ( built,
       [ ("benign", report);
         ("bit flip, no key", flip_or_word ~re_mac:false built report 10);
         ("entry flip, forged MAC", flip_or_word ~re_mac:true built report 10);
         ("F3 frame flip, forged MAC", flip_or_word ~re_mac:true built report 0);
         ("truncated, forged MAC",
          forge_token built
            { report with
              A.Pox.or_data = String.sub report.A.Pox.or_data 0 17 }) ] ))

let signature outcome =
  ( outcome.C.Verifier.accepted,
    outcome.C.Verifier.findings,
    match outcome.C.Verifier.trace with
    | Some t -> t.C.Verifier.step_count
    | None -> -1 )

(* Outcomes must agree across decode_cache on/off x keep_trace on/off.
   The reference point is (fresh decode, keep_trace=true) — the engine
   the seed shipped. *)
let test_cache_and_trace_equivalence () =
  let built, reports = Lazy.force corpus in
  let reference_plan = C.Verifier.plan ~decode_cache:false built in
  let cached_plan = C.Verifier.plan built in
  List.iter
    (fun (name, report) ->
       let reference =
         signature (C.Verifier.verify_plan reference_plan report)
       in
       List.iter
         (fun (cfg, plan, keep_trace) ->
            check_bool
              (Printf.sprintf "%s: %s matches reference" name cfg)
              true
              (signature (C.Verifier.verify_plan ~keep_trace plan report)
               = reference))
         [ ("fresh decode, no trace", reference_plan, false);
           ("cached decode, trace", cached_plan, true);
           ("cached decode, no trace", cached_plan, false) ])
    reports

(* With keep_trace the cached path must also retell the same story
   step-by-step; only Fetch accesses may differ (the predecoded fast
   path never performs the byte-level fetch, so it records none). *)
let test_step_equivalence_modulo_fetch () =
  let built, reports = Lazy.force corpus in
  let benign = List.assoc "benign" reports in
  let steps plan =
    match (C.Verifier.verify_plan plan benign).C.Verifier.trace with
    | Some t -> t.C.Verifier.steps
    | None -> Alcotest.fail "benign replay produced no trace"
  in
  let fresh = steps (C.Verifier.plan ~decode_cache:false built) in
  let cached = steps (C.Verifier.plan built) in
  check_int "same number of steps" (List.length fresh) (List.length cached);
  List.iter2
    (fun (a : C.Verifier.step) (b : C.Verifier.step) ->
       let non_fetch s =
         List.filter
           (fun (acc : M.Memory.access) ->
              match acc.M.Memory.kind with
              | M.Memory.Fetch -> false
              | M.Memory.Read | M.Memory.Write -> true)
           s.C.Verifier.s_accesses
       in
       check_bool
         (Printf.sprintf "step %d identical modulo fetches" a.C.Verifier.s_index)
         true
         (a.C.Verifier.s_index = b.C.Verifier.s_index
          && a.C.Verifier.s_pc = b.C.Verifier.s_pc
          && a.C.Verifier.s_instr = b.C.Verifier.s_instr
          && a.C.Verifier.s_pc_after = b.C.Verifier.s_pc_after
          && non_fetch a = non_fetch b))
    fresh cached

(* Fleet: verdicts independent of the domain count, with the batch path
   running keep_trace=false over the shared cached plan. *)
let test_fleet_domains_equivalence () =
  let built, reports = Lazy.force corpus in
  let batch =
    List.concat_map
      (fun i ->
         List.map
           (fun (name, r) -> (Printf.sprintf "%s #%d" name i, r))
           reports)
      [ 0; 1 ]
  in
  let plan = F.Plan.of_built built in
  let one = F.Fleet.verify_batch ~domains:1 plan batch in
  let four = F.Fleet.verify_batch ~domains:4 ~chunk:2 plan batch in
  check_int "verdict count" (List.length batch)
    (List.length one.F.Fleet.verdicts);
  List.iter2
    (fun (a : F.Fleet.verdict) (b : F.Fleet.verdict) ->
       check_bool
         (Printf.sprintf "%s: domains 1 = domains 4" a.F.Fleet.device_id)
         true
         (a.F.Fleet.device_id = b.F.Fleet.device_id
          && a.F.Fleet.accepted = b.F.Fleet.accepted
          && a.F.Fleet.findings = b.F.Fleet.findings
          && a.F.Fleet.replay_steps = b.F.Fleet.replay_steps))
    one.F.Fleet.verdicts four.F.Fleet.verdicts

(* ---------------------------------------------------------------- *)
(* Bad-opcode regression.                                            *)

let bad_opcode_op = {|
    entry:
        .word 0x1380              ; undecodable; faults before the exit
        br #__op_exit
    |}

let test_bad_opcode_no_spurious_shadow_stack () =
  let built = C.Pipeline.build ~op:(Asm_parse.parse bad_opcode_op) () in
  let device = C.Pipeline.device built in
  let result = A.Device.run_operation device in
  check_bool "device run faults" true (not result.A.Device.completed);
  (* a key-holding attacker claims the faulting run completed *)
  let report = A.Device.attest device ~challenge:"bad-opcode" in
  let forged = forge_token built { report with A.Pox.exec = true } in
  let outcome = C.Verifier.verify_plan (C.Verifier.plan built) forged in
  check_bool "rejected" true (not outcome.C.Verifier.accepted);
  check_bool "replay failure names the opcode" true
    (List.exists
       (fun f ->
          match f with
          | C.Verifier.Replay_failed msg ->
            String.length msg >= 25
            && String.sub msg 11 14 = "invalid opcode"
          | _ -> false)
       outcome.C.Verifier.findings);
  check_bool "no spurious shadow-stack finding" true
    (not
       (List.exists
          (fun f ->
             match f with
             | C.Verifier.Shadow_stack_violation _ -> true
             | _ -> false)
          outcome.C.Verifier.findings));
  (* the faulting step retired no instruction and must say so *)
  (match outcome.C.Verifier.trace with
   | None -> Alcotest.fail "expected a trace from the failed replay"
   | Some t ->
     (match List.rev t.C.Verifier.steps with
      | last :: _ ->
        check_bool "faulting step has s_instr = None" true
          (last.C.Verifier.s_instr = None)
      | [] -> Alcotest.fail "expected at least one replayed step"));
  (* the same fault under the cacheless plan tells the same story *)
  let reference =
    C.Verifier.verify_plan (C.Verifier.plan ~decode_cache:false built) forged
  in
  check_bool "reference path agrees" true
    (reference.C.Verifier.findings = outcome.C.Verifier.findings)

let suites =
  [ ("replay-equiv",
     [ Alcotest.test_case "verdicts: cache x trace retention" `Quick
         test_cache_and_trace_equivalence;
       Alcotest.test_case "steps identical modulo fetches" `Quick
         test_step_equivalence_modulo_fetch;
       Alcotest.test_case "fleet: domains 1 = domains 4" `Quick
         test_fleet_domains_equivalence;
       Alcotest.test_case "bad opcode: no spurious shadow stack" `Quick
         test_bad_opcode_no_spurious_shadow_stack ]) ]
