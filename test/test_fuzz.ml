(* Robustness fuzzing: the decoder and the wire parser face attacker-
   controlled bytes and must never crash — only decode or reject. *)

module M = Dialed_msp430
module A = Dialed_apex

let prop_decoder_total =
  QCheck.Test.make ~name:"decoder: decode or Undecodable, never crash"
    ~count:2000
    QCheck.(triple (int_range 0 0xFFFF) (int_range 0 0xFFFF) (int_range 0 0xFFFF))
    (fun (w0, w1, w2) ->
       let words = [| w0; w1; w2; 0x4303 |] in
       let get_word addr = words.((addr / 2) land 3) in
       match M.Decode.decode ~get_word 0 with
       | instr, next ->
         (* whatever decodes must re-encode to the same bytes we read *)
         next > 0
         &&
         (match M.Encode.encode instr with
          | exception M.Encode.Unencodable _ ->
            (* a few decoded shapes (e.g. byte call) have no encoder
               form; acceptable as long as decode stayed total *)
            true
          | words' ->
            (* re-decoding the encoding gives the same instruction *)
            let arr = Array.of_list words' in
            let gw a = arr.(a / 2) in
            (match M.Decode.decode ~get_word:gw 0 with
             | instr', _ -> instr' = instr
             | exception M.Decode.Undecodable _ -> false))
       | exception M.Decode.Undecodable _ -> true)

let prop_wire_total =
  QCheck.Test.make ~name:"wire: arbitrary bytes parse or reject cleanly"
    ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
       match A.Wire.decode s with
       | Ok r -> String.length r.A.Pox.token = 32
       | Error _ -> true)

let prop_wire_truncations =
  QCheck.Test.make
    ~name:"wire: every strict prefix rejects as Short_buffer"
    ~count:200
    QCheck.(pair (int_range 0 1000)
              (string_of_size (QCheck.Gen.int_range 0 120)))
    (fun (cut, challenge) ->
       let report =
         { A.Pox.challenge; er_min = 0xE000; er_max = 0xE0FF;
           er_exit = 0xE0FE; or_min = 0x0400; or_max = 0x05FE; exec = true;
           or_data = String.make 64 'x'; token = String.make 32 't' }
       in
       let encoded = A.Wire.encode report in
       let cut = cut mod String.length encoded in
       (* the buffer ran out mid-field: the typed cause must say so *)
       match A.Wire.decode (String.sub encoded 0 cut) with
       | Error (A.Wire.Short_buffer _) -> true
       | Error _ | Ok _ -> false)

let prop_asm_parser_total =
  QCheck.Test.make ~name:"asm parser: junk lines error, never crash"
    ~count:500 QCheck.printable_string
    (fun s ->
       match M.Asm_parse.parse s with
       | _ -> true
       | exception M.Asm_parse.Error _ -> true)

let suites =
  [ ("fuzz",
     List.map QCheck_alcotest.to_alcotest
       [ prop_decoder_total; prop_wire_total; prop_wire_truncations;
         prop_asm_parser_total ]) ]
