(* The static auditor: in-tree binaries audit clean, stripped variants do
   not, the footprint analysis behaves on hand-built shapes, and the
   recognizers track the real emitters (QCheck encode/decode round-trip
   over the audited ISA subset + random MiniC programs). *)

module M = Dialed_msp430
module Isa = M.Isa
module C = Dialed_core
module S = Dialed_staticcheck
module T = Dialed_tinycfa.Instrument
module A = Dialed_apps.Apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let report_str r = Format.asprintf "%a" S.Report.pp r

let kinds r =
  List.map S.Report.finding_kind r.S.Report.findings |> List.sort_uniq compare

let audit ?config built = C.Verifier.audit_built ?config built

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* every in-tree binary audits clean *)

let test_apps_audit_clean () =
  List.iter
    (fun app ->
       let built = A.build app in
       let r = audit built in
       Alcotest.(check string)
         (app.A.name ^ " audits clean") ""
         (if S.Report.ok r then "" else report_str r))
    (A.syringe_pump_vuln :: A.all)

let test_clean_stats_cross_check () =
  List.iter
    (fun app ->
       let built = A.build app in
       let r = audit built in
       let cf, input = T.count_sites built.C.Pipeline.program in
       check_int (app.A.name ^ " cf sites") cf
         r.S.Report.stats.S.Report.cf_sites;
       check_int (app.A.name ^ " input sites") input
         r.S.Report.stats.S.Report.input_sites)
    (A.syringe_pump_vuln :: A.all)

(* ------------------------------------------------------------------ *)
(* partially instrumented / raw variants are rejected with the right
   classes *)

let test_cfa_only_rejected () =
  let built = A.build ~variant:C.Pipeline.Cfa_only A.fire_sensor in
  let r = audit built in
  check_bool "cfa-only is not clean" false (S.Report.ok r);
  check_bool "missing F3 snapshot flagged" true
    (List.mem "base-sp-save" (kinds r))

let test_unmodified_rejected () =
  let built = A.build ~variant:C.Pipeline.Unmodified A.fire_sensor in
  let r = audit built in
  check_bool "unmodified is not clean" false (S.Report.ok r);
  check_bool "no abort loop" true (List.mem "abort-loop" (kinds r));
  check_bool "entry check missing" true (List.mem "entry-check" (kinds r));
  check_bool "unlogged control flow" true (List.mem "unlogged-cf" (kinds r))

(* ------------------------------------------------------------------ *)
(* footprint analysis on hand-built operations *)

let parse = M.Asm_parse.parse
let build_op src = C.Pipeline.build ~or_min:0x0280 ~op:(parse src) ()
let footprint built = (audit built).S.Report.stats.S.Report.footprint

let test_footprint_straight_line () =
  (* 9 entry appends + the final ret's CF append *)
  let built = build_op "op:\n    mov #1, r5\n    ret\n" in
  match footprint built with
  | S.Report.Bounded n -> check_int "straight-line worst case" 10 n
  | S.Report.Unbounded why -> Alcotest.failf "unexpectedly unbounded: %s" why

let loop_op = "op:\n    mov #5, r5\nloop:\n    sub #1, r5\n    jnz loop\n    ret\n"

let test_footprint_loop_unbounded () =
  match footprint (build_op loop_op) with
  | S.Report.Unbounded _ -> ()
  | S.Report.Bounded n ->
    Alcotest.failf "loop without a bound policy gave Bounded %d" n

let test_footprint_loop_bounded_policy () =
  let config = { S.Audit.default_config with S.Audit.loop_bound = Some 8 } in
  let r = audit ~config (build_op loop_op) in
  (match r.S.Report.stats.S.Report.footprint with
   | S.Report.Bounded n -> check_bool "policy bound dominates" true (n > 9)
   | S.Report.Unbounded why ->
     Alcotest.failf "loop_bound 8 still unbounded: %s" why);
  check_bool "clean under the policy" true (S.Report.ok r)

let test_footprint_require_bounded () =
  let config =
    { S.Audit.default_config with S.Audit.require_bounded = true }
  in
  let r = audit ~config (build_op loop_op) in
  check_bool "unbounded footprint becomes a finding" true
    (List.mem "unbounded-footprint" (kinds r))

let test_footprint_overflow_flagged () =
  (* an 8-entry OR cannot hold the 9-entry F3 snapshot + the ret append *)
  let built =
    C.Pipeline.build ~or_min:0x05F0
      ~op:(parse "op:\n    mov #1, r5\n    ret\n") ()
  in
  check_bool "log overflow flagged" true
    (List.mem "log-overflow" (kinds (audit built)))

let test_capacity () =
  (* default OR [0x0400, 0x05FF] holds 256 two-byte entries *)
  check_int "capacity" 256
    (S.Audit.capacity_entries ~or_min:0x0400 ~or_max:0x05FE)

(* ------------------------------------------------------------------ *)
(* selective discipline: every in-tree binary also audits clean when
   built selectively (the dataflow pass proves the dropped F4 coverage
   safe), and a read guard is only an acceptable substitute for a log
   entry under that discipline *)

let test_selective_apps_audit_clean () =
  List.iter
    (fun app ->
       let built = A.build ~selective:true app in
       let r = audit built in
       Alcotest.(check string)
         (app.A.name ^ " selective audits clean") ""
         (if S.Report.ok r then "" else report_str r))
    A.all

let guarded_op =
  "op:\n\
  \    mov #2, r14\n\
  \    .annot load arr arr 8\n\
  \    mov arr(r14), r15\n\
  \    ret\n"

let guarded_build () =
  let dfa_config =
    { C.Dfa.default_config with
      C.Dfa.selective = Some { C.Dfa.critical = [] } }
  in
  C.Pipeline.build ~dfa_config
    ~data:(parse "arr:\n    .space 8\n")
    ~op:(parse guarded_op) ()

let test_read_guard_selective_only () =
  let built = guarded_build () in
  (* under its own discipline the guarded binary is clean *)
  check_bool "selective build carries the reduced discipline" true
    built.C.Pipeline.selective;
  check_bool "guarded read audits clean under selective" true
    (S.Report.ok (audit built));
  (* the same binary audited against the FULL discipline is rejected: a
     guard is not a log entry. [Verifier.audit_built] would force the
     build's own discipline back on, so call the auditor directly. *)
  let mem = M.Memory.create () in
  M.Assemble.load built.C.Pipeline.image mem;
  let l = built.C.Pipeline.layout in
  let r =
    S.Audit.audit ~mem
      ~er_min:l.Dialed_apex.Layout.er_min ~er_max:l.Dialed_apex.Layout.er_max
      ~or_min:l.Dialed_apex.Layout.or_min ~or_max:l.Dialed_apex.Layout.or_max
      ()
  in
  check_bool "guard does not satisfy the full discipline" false
    (S.Report.ok r)

(* ------------------------------------------------------------------ *)
(* plan integration + report serialization *)

let test_plan_carries_audit () =
  let built = A.build A.syringe_pump in
  let plan = C.Verifier.plan ~audit:S.Audit.default_config built in
  match C.Verifier.plan_audit plan with
  | Some r -> check_bool "plan audit clean" true (S.Report.ok r)
  | None -> Alcotest.fail "plan built with ~audit carries no report"

let test_json_shape () =
  let r = audit (A.build A.fire_sensor) in
  let json = S.Report.to_json r in
  List.iter
    (fun key -> check_bool ("json has " ^ key) true (contains json key))
    [ "\"ok\""; "\"findings\""; "\"cf_sites\""; "\"input_sites\"";
      "\"footprint\"" ];
  let bad = audit (A.build ~variant:C.Pipeline.Unmodified A.fire_sensor) in
  check_bool "findings serialize with kinds" true
    (contains (S.Report.to_json bad) "\"unlogged-cf\"")

let test_summary () =
  let r = audit (A.build A.syringe_pump) in
  Alcotest.(check string) "clean summary" "clean" (S.Report.summary r)

(* findings are presented sorted by (anchor address, kind) and exact
   duplicates collapse, whatever order the passes emitted them in *)
let test_normalize_orders_and_dedupes () =
  let a = S.Report.Unchecked_read { at = 0xE010 } in
  let b = S.Report.Unchecked_store { at = 0xE004 } in
  let c = S.Report.Critical_not_covered { at = 0xE004; ea = 0x0140 } in
  let got = S.Report.normalize [ a; c; b; a; c ] in
  Alcotest.(check (list string))
    "sorted by (addr, kind), deduped"
    [ "critical-not-covered"; "unchecked-store"; "unchecked-read" ]
    (List.map S.Report.finding_kind got);
  check_int "duplicates collapsed" 3 (List.length got)

let test_sarif_shape () =
  let clean = audit (A.build A.fire_sensor) in
  let s = S.Report.to_sarif clean in
  List.iter
    (fun key -> check_bool ("sarif has " ^ key) true (contains s key))
    [ "\"version\":\"2.1.0\""; "sarif-2.1.0.json"; "\"runs\""; "dialed-lint" ];
  let bad = audit (A.build ~variant:C.Pipeline.Unmodified A.fire_sensor) in
  let s = S.Report.to_sarif ~uri:"fire.bin" bad in
  List.iter
    (fun key -> check_bool ("sarif result has " ^ key) true (contains s key))
    [ "\"ruleId\""; "unlogged-cf"; "absoluteAddress"; "fire.bin" ]

let test_sarif_multi_one_run_per_app () =
  (* two rejected builds, so each run carries results anchored to its
     own artifact uri *)
  let bad1 = audit (A.build ~variant:C.Pipeline.Cfa_only A.fire_sensor) in
  let bad2 = audit (A.build ~variant:C.Pipeline.Unmodified A.fire_sensor) in
  let s = S.Report.to_sarif_multi [ ("a.bin", bad1); ("b.bin", bad2) ] in
  check_bool "first artifact present" true (contains s "a.bin");
  check_bool "second artifact present" true (contains s "b.bin");
  let count_driver =
    let n = ref 0 in
    let needle = "dialed-lint" in
    let nh = String.length s and nn = String.length needle in
    for i = 0 to nh - nn do
      if String.sub s i nn = needle then incr n
    done;
    !n
  in
  check_int "one tool.driver per run" 2 count_driver

(* ------------------------------------------------------------------ *)
(* QCheck: encode/decode round-trip over the ISA subset the auditor
   pattern-matches, so the recognizers cannot drift from the codec *)

let gen_reg = QCheck.Gen.oneofl [ 0; 1; 4; 5; 6; 10; 12; 15 ]

(* memory-operand bases: r0 in indirect/indexed modes aliases the
   immediate and symbolic encodings and cannot round-trip *)
let gen_base = QCheck.Gen.oneofl [ 1; 4; 5; 6; 10; 12; 15 ]

let gen_imm =
  QCheck.Gen.oneofl [ 0; 1; 2; 4; 8; 5; 0xFF; 0x0280; 0x1234; 0xE000; 0xFFFF ]

let gen_src =
  QCheck.Gen.(
    frequency
      [ (3, map (fun r -> Isa.Sreg r) gen_reg);
        (3, map (fun n -> Isa.Simm n) gen_imm);
        (2, map2 (fun x r -> Isa.Sindexed (x, r)) (oneofl [ 0; 2; 4; 0x10 ]) gen_base);
        (1, map (fun a -> Isa.Sabsolute a) gen_imm);
        (1, map (fun r -> Isa.Sindirect r) gen_base);
        (1, map (fun r -> Isa.Sindirect_inc r) gen_base) ])

let gen_dst =
  QCheck.Gen.(
    frequency
      [ (3, map (fun r -> Isa.Dreg r) gen_reg);
        (2, map2 (fun x r -> Isa.Dindexed (x, r)) (oneofl [ 0; 2; 4; 0x10 ]) gen_base);
        (1, map (fun a -> Isa.Dabsolute a) gen_imm) ])

let gen_two_op =
  QCheck.Gen.oneofl [ Isa.MOV; Isa.ADD; Isa.SUB; Isa.CMP; Isa.BIT; Isa.AND ]

let gen_instr =
  QCheck.Gen.(
    frequency
      [ (5,
         map2
           (fun op (src, dst) -> Isa.Two (op, Isa.Word, src, dst))
           gen_two_op (pair gen_src gen_dst));
        (2,
         map2
           (fun cond off -> Isa.Jump (cond, off))
           (oneofl [ Isa.JNE; Isa.JEQ; Isa.JNC; Isa.JC; Isa.JGE; Isa.JMP ])
           (int_range (-200) 200));
        (1, map (fun src -> Isa.One (Isa.PUSH, Isa.Word, src)) gen_src);
        (1, map (fun src -> Isa.One (Isa.CALL, Isa.Word, src)) gen_src) ])

let arb_instr =
  QCheck.make ~print:(fun i -> Format.asprintf "%a" Isa.pp i)
    gen_instr

let roundtrip_test =
  QCheck.Test.make ~name:"auditor ISA subset: decode . encode = id"
    ~count:2000 arb_instr (fun instr ->
      match M.Encode.encode instr with
      | exception M.Encode.Unencodable _ -> QCheck.assume_fail ()
      | words ->
        let arr = Array.of_list words in
        let get_word addr = arr.((addr - 0x1000) / 2) in
        (match M.Decode.decode ~get_word 0x1000 with
         | exception _ ->
           QCheck.Test.fail_reportf "decode raised on %a"
             Isa.pp instr
         | decoded, next ->
           if decoded <> instr then
             QCheck.Test.fail_reportf "decoded %a from %a"
               Isa.pp decoded Isa.pp instr;
           next - 0x1000 = Isa.instr_size_bytes instr))

(* random MiniC programs: whatever the pipeline emits, the auditor
   accepts — pins the recognizers to the actual emitters *)
let audit_accepts_random =
  QCheck.Test.make ~name:"auditor accepts random instrumented programs"
    ~count:25 Test_randprog.arb_program (fun stmts ->
      let source = Test_randprog.program_source stmts in
      let compiled = Dialed_minic.Minic.compile source in
      let built =
        C.Pipeline.build ~data:compiled.Dialed_minic.Minic.data
          ~op:compiled.Dialed_minic.Minic.op ~or_min:0x0280 ()
      in
      let r = audit built in
      if not (S.Report.ok r) then
        QCheck.Test.fail_reportf "audit rejected:\n%s\n--- source ---\n%s"
          (report_str r) source;
      true)

let suites =
  [ ("staticcheck",
     [ Alcotest.test_case "apps audit clean" `Quick test_apps_audit_clean;
       Alcotest.test_case "stats cross-check" `Quick
         test_clean_stats_cross_check;
       Alcotest.test_case "cfa-only rejected" `Quick test_cfa_only_rejected;
       Alcotest.test_case "unmodified rejected" `Quick
         test_unmodified_rejected;
       Alcotest.test_case "footprint straight line" `Quick
         test_footprint_straight_line;
       Alcotest.test_case "footprint loop unbounded" `Quick
         test_footprint_loop_unbounded;
       Alcotest.test_case "footprint loop policy" `Quick
         test_footprint_loop_bounded_policy;
       Alcotest.test_case "footprint require bounded" `Quick
         test_footprint_require_bounded;
       Alcotest.test_case "footprint overflow" `Quick
         test_footprint_overflow_flagged;
       Alcotest.test_case "capacity" `Quick test_capacity;
       Alcotest.test_case "selective apps audit clean" `Quick
         test_selective_apps_audit_clean;
       Alcotest.test_case "read guard selective-only" `Quick
         test_read_guard_selective_only;
       Alcotest.test_case "plan carries audit" `Quick test_plan_carries_audit;
       Alcotest.test_case "json shape" `Quick test_json_shape;
       Alcotest.test_case "summary" `Quick test_summary;
       Alcotest.test_case "normalize orders and dedupes" `Quick
         test_normalize_orders_and_dedupes;
       Alcotest.test_case "sarif shape" `Quick test_sarif_shape;
       Alcotest.test_case "sarif multi-run" `Quick
         test_sarif_multi_one_run_per_app;
       QCheck_alcotest.to_alcotest roundtrip_test;
       QCheck_alcotest.to_alcotest audit_accepts_random ]) ]
