(* SHA-256 / HMAC-SHA256 against FIPS and RFC 4231 test vectors, plus
   incremental-update properties. *)

module Sha256 = Dialed_crypto.Sha256
module Hmac = Dialed_crypto.Hmac

let check_str = Alcotest.(check string)

let test_sha256_vectors () =
  check_str "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex (Sha256.digest ""));
  check_str "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex (Sha256.digest "abc"));
  check_str "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex
       (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check_str "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Sha256.digest (String.make 1_000_000 'a')));
  (* NIST 896-bit (two-block) message *)
  check_str "896-bit message"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hex
       (Sha256.digest
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
           ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))

let test_sha256_block_boundaries () =
  (* lengths straddling the 55/56/64-byte padding boundaries *)
  let golden =
    [ (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
      (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
      (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6");
      (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
      (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0") ]
  in
  List.iter
    (fun (len, expect) ->
       check_str (Printf.sprintf "len %d" len) expect
         (Sha256.hex (Sha256.digest (String.make len 'a'))))
    golden

let test_incremental () =
  let msg = "The quick brown fox jumps over the lazy dog" in
  let whole = Sha256.digest msg in
  let split_at n =
    let a = String.sub msg 0 n and b = String.sub msg n (String.length msg - n) in
    Sha256.finalize (Sha256.update (Sha256.update (Sha256.init ()) a) b)
  in
  for n = 0 to String.length msg do
    check_str (Printf.sprintf "split %d" n) (Sha256.hex whole) (Sha256.hex (split_at n))
  done

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 1 *)
  check_str "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hex (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  (* test case 2: short key "Jefe" *)
  check_str "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  (* test case 3: 20x 0xaa key, 50x 0xdd data *)
  check_str "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.hex (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  (* test case 6: key longer than the block size *)
  check_str "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.hex
       (Hmac.mac ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_mac_parts () =
  let key = "secret" in
  check_str "parts = concatenation"
    (Hmac.hex (Hmac.mac ~key "abcdef"))
    (Hmac.hex (Hmac.mac_parts ~key [ "ab"; "cd"; "ef" ]))

let test_verify () =
  let key = "k" and msg = "m" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts valid" true (Hmac.verify ~key ~msg ~tag);
  let bad = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) tag in
  Alcotest.(check bool) "rejects flipped bit" false (Hmac.verify ~key ~msg ~tag:bad);
  Alcotest.(check bool) "rejects truncation" false
    (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16));
  Alcotest.(check bool) "rejects wrong key" false
    (Hmac.verify ~key:"other" ~msg ~tag)

let test_copy_independence () =
  (* [update] mutates in place, so forks must be taken with [copy] — and
     a fork must never disturb its origin or siblings *)
  let base = Sha256.update (Sha256.init ()) "shared prefix " in
  let left = Sha256.copy base and right = Sha256.copy base in
  check_str "left branch"
    (Sha256.hex (Sha256.digest "shared prefix left"))
    (Sha256.hex (Sha256.finalize (Sha256.update left "left")));
  check_str "right branch"
    (Sha256.hex (Sha256.digest "shared prefix right"))
    (Sha256.hex (Sha256.finalize (Sha256.update right "right")));
  (* finalize is non-destructive: a finalized ctx can keep absorbing *)
  check_str "continue after finalize"
    (Sha256.hex (Sha256.digest "shared prefix left-more"))
    (Sha256.hex (Sha256.finalize (Sha256.update left "-more")));
  (* and the origin never saw any of it *)
  check_str "origin undisturbed"
    (Sha256.hex (Sha256.digest "shared prefix tail"))
    (Sha256.hex (Sha256.finalize (Sha256.update base "tail")))

let test_key_state () =
  let key = String.make 20 '\x0b' in
  let ks = Hmac.key_state ~key in
  check_str "key_state = mac"
    (Hmac.hex (Hmac.mac ~key "Hi There"))
    (Hmac.hex (Hmac.mac_with ks "Hi There"));
  check_str "key_state parts = mac"
    (Hmac.hex (Hmac.mac ~key "Hi There"))
    (Hmac.hex (Hmac.mac_parts_with ks [ "Hi "; "There" ]));
  (* the precomputed state is reusable across messages *)
  check_str "key_state reuse"
    (Hmac.hex (Hmac.mac ~key "second message"))
    (Hmac.hex (Hmac.mac_with ks "second message"))

let prop_incremental_equals_oneshot =
  QCheck.Test.make ~name:"incremental = one-shot" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 300)) (int_range 0 300))
    (fun (s, cut) ->
       let cut = min cut (String.length s) in
       let a = String.sub s 0 cut and b = String.sub s cut (String.length s - cut) in
       Sha256.finalize (Sha256.update (Sha256.update (Sha256.init ()) a) b)
       = Sha256.digest s)

let prop_partition_equals_oneshot =
  (* any way of slicing a message into consecutive chunks and streaming
     them through [update] must give the one-shot digest *)
  QCheck.Test.make ~name:"random partition = one-shot" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 400))
              (list_of_size (QCheck.Gen.int_range 0 12) (int_range 0 400)))
    (fun (s, cuts) ->
       let n = String.length s in
       let cuts = List.sort_uniq compare (0 :: n :: List.map (fun c -> min c n) cuts) in
       let rec chunks = function
         | a :: (b :: _ as rest) -> String.sub s a (b - a) :: chunks rest
         | _ -> []
       in
       let ctx =
         List.fold_left Sha256.update (Sha256.init ()) (chunks cuts)
       in
       Sha256.finalize ctx = Sha256.digest s)

let prop_distinct_messages_distinct_macs =
  QCheck.Test.make ~name:"mac respects message identity" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
       if a = b then Hmac.mac ~key:"k" a = Hmac.mac ~key:"k" b
       else Hmac.mac ~key:"k" a <> Hmac.mac ~key:"k" b)

let suites =
  [ ("crypto",
     [ Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
       Alcotest.test_case "sha256 padding boundaries" `Quick test_sha256_block_boundaries;
       Alcotest.test_case "sha256 incremental" `Quick test_incremental;
       Alcotest.test_case "hmac RFC 4231" `Quick test_hmac_rfc4231;
       Alcotest.test_case "mac_parts" `Quick test_mac_parts;
       Alcotest.test_case "ctx copy independence" `Quick test_copy_independence;
       Alcotest.test_case "precomputed key state" `Quick test_key_state;
       Alcotest.test_case "verify" `Quick test_verify ]
     @ List.map QCheck_alcotest.to_alcotest
         [ prop_incremental_equals_oneshot; prop_partition_equals_oneshot;
           prop_distinct_messages_distinct_macs ]) ]
