(* The readiness event loop in isolation: timer-wheel ordering and
   cancellation, hook-source deduplication, cross-thread posting into a
   blocked loop, and fd watches — under both poller backends where the
   platform provides epoll. *)

module N = Dialed_net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_loop backend f =
  let loop = N.Evloop.create ~backend () in
  Fun.protect ~finally:(fun () -> N.Evloop.close loop) (fun () -> f loop)

(* Run the loop until [cond] holds, failing the test after [deadline]
   seconds so a loop bug can never hang the suite. *)
let run_until ?(deadline = 5.0) loop cond =
  let t0 = Unix.gettimeofday () in
  let expired () = Unix.gettimeofday () -. t0 > deadline in
  (* a coarse repeating tick bounds every wait so expiry is observed *)
  let rec tick () =
    if not (cond () || expired ()) then
      ignore (N.Evloop.after loop 0.05 tick : N.Evloop.timer)
  in
  tick ();
  N.Evloop.run loop ~stop:(fun () -> cond () || expired ());
  if not (cond ()) then Alcotest.fail "run_until: condition never held"

(* ------------------------------------------------------------- *)
(* Timers.                                                         *)

let test_timer_order backend () =
  with_loop backend (fun loop ->
      let fired = ref [] in
      let t0 = Unix.gettimeofday () in
      let arm tag delay =
        ignore
          (N.Evloop.after loop delay (fun () ->
               fired := (tag, Unix.gettimeofday () -. t0) :: !fired)
           : N.Evloop.timer)
      in
      arm "c" 0.09;
      arm "a" 0.03;
      arm "b" 0.06;
      run_until loop (fun () -> List.length !fired = 3);
      let order = List.rev_map fst !fired in
      check_bool "fired in deadline order" true (order = [ "a"; "b"; "c" ]);
      (* never early: each timer waited at least its full delay *)
      List.iter
        (fun (tag, el) ->
           let d =
             match tag with "a" -> 0.03 | "b" -> 0.06 | _ -> 0.09
           in
           if el < d -. 0.001 then
             Alcotest.failf "timer %s fired %.4fs early" tag (d -. el))
        !fired)

let test_timer_cancel backend () =
  with_loop backend (fun loop ->
      let fired = ref [] in
      let arm tag delay =
        N.Evloop.after loop delay (fun () -> fired := tag :: !fired)
      in
      let a = arm "a" 0.02 in
      let _b = arm "b" 0.04 in
      let c = arm "c" 0.06 in
      N.Evloop.cancel loop a;
      N.Evloop.cancel loop c;
      (* double-cancel is a no-op, not a crash or a count underflow *)
      N.Evloop.cancel loop c;
      run_until loop (fun () -> !fired <> []);
      Thread.yield ();
      check_bool "only the live timer fired" true (!fired = [ "b" ]))

(* A delay past the level-0 horizon (256 ticks = 2.56 s) exercises the
   wheel cascade: the timer parks in level 1 and must still fire on
   time, not at the wrap. *)
let test_timer_cascade () =
  with_loop `Poll (fun loop ->
      let fired = ref false in
      let t0 = Unix.gettimeofday () in
      ignore
        (N.Evloop.after loop 2.7 (fun () -> fired := true) : N.Evloop.timer);
      run_until ~deadline:8.0 loop (fun () -> !fired);
      let el = Unix.gettimeofday () -. t0 in
      check_bool "cascaded timer not early" true (el >= 2.7 -. 0.001);
      check_bool "cascaded timer not wildly late" true (el < 4.0))

(* ------------------------------------------------------------- *)
(* Cross-thread machinery.                                         *)

let test_hook_source_dedup backend () =
  with_loop backend (fun loop ->
      let calls = ref 0 in
      let thunk = N.Evloop.hook_source loop (fun () -> incr calls) in
      (* burst of readiness signals before the loop looks: one callback *)
      for _ = 1 to 5 do thunk () done;
      run_until loop (fun () -> !calls >= 1);
      check_int "burst coalesced to one callback" 1 !calls;
      (* re-arms after delivery: a later signal fires again *)
      thunk ();
      thunk ();
      run_until loop (fun () -> !calls >= 2);
      check_int "second burst coalesced too" 2 !calls)

let test_cross_thread_post backend () =
  with_loop backend (fun loop ->
      let landed = ref false in
      (* the loop blocks with no timers armed; only the poster's wake
         can get the thunk delivered *)
      let poster =
        Thread.create
          (fun () ->
             Thread.delay 0.05;
             N.Evloop.post loop (fun () -> landed := true))
          ()
      in
      N.Evloop.run loop ~stop:(fun () -> !landed);
      Thread.join poster;
      check_bool "posted thunk ran on the loop" true !landed)

(* ------------------------------------------------------------- *)
(* Fd watches.                                                     *)

let test_fd_watch backend () =
  with_loop backend (fun loop ->
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          (try Unix.close w with Unix.Unix_error _ -> ()))
        (fun () ->
           let got = Buffer.create 8 in
           let buf = Bytes.create 64 in
           N.Evloop.watch loop r
             ~read:
               (Some
                  (fun () ->
                    match Unix.read r buf 0 64 with
                    | n when n > 0 ->
                      Buffer.add_subbytes got buf 0 n
                    | _ -> ()
                    | exception
                        Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()))
             ~write:None;
           (* data written from another thread wakes the watch *)
           let writer =
             Thread.create
               (fun () ->
                  Thread.delay 0.03;
                  ignore (Unix.write_substring w "ping" 0 4))
               ()
           in
           run_until loop (fun () -> Buffer.length got >= 4);
           Thread.join writer;
           check_bool "read callback saw the bytes" true
             (Buffer.contents got = "ping");
           (* unwatch: later writes no longer reach the callback *)
           N.Evloop.unwatch loop r;
           ignore (Unix.write_substring w "more" 0 4);
           let parked = ref false in
           ignore
             (N.Evloop.after loop 0.1 (fun () -> parked := true)
              : N.Evloop.timer);
           run_until loop (fun () -> !parked);
           check_bool "unwatched fd stayed silent" true
             (Buffer.contents got = "ping")))

let test_write_interest backend () =
  with_loop backend (fun loop ->
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          (try Unix.close w with Unix.Unix_error _ -> ()))
        (fun () ->
           (* an empty pipe is immediately writable: write interest
              fires without any peer action *)
           let writable = ref false in
           N.Evloop.watch loop w ~read:None
             ~write:
               (Some
                  (fun () ->
                    writable := true;
                    N.Evloop.unwatch loop w));
           run_until loop (fun () -> !writable);
           check_bool "write readiness delivered" true !writable))

(* ------------------------------------------------------------- *)

let backends =
  ("poll", `Poll)
  :: (if N.Rawpoll.has_epoll () then [ ("epoll", `Epoll) ] else [])

let suites =
  [ ("net-evloop",
     List.concat_map
       (fun (tag, backend) ->
          let t name f =
            Alcotest.test_case (name ^ " [" ^ tag ^ "]") `Quick (f backend)
          in
          [ t "timers fire in deadline order" test_timer_order;
            t "cancelled timers never fire" test_timer_cancel;
            t "hook source coalesces bursts" test_hook_source_dedup;
            t "cross-thread post wakes a blocked loop" test_cross_thread_post;
            t "fd read watch" test_fd_watch;
            t "fd write interest" test_write_interest ])
       backends
     @ [ Alcotest.test_case "timer cascades across wheel levels" `Slow
           test_timer_cascade ]) ]
