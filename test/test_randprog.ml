(* Randomized whole-program testing: generate small structured MiniC
   programs (assignments, array stores, conditionals, bounded loops,
   function calls) and check that the Unmodified / Tiny-CFA / DIALED
   builds produce identical results and identical final data memory —
   i.e. the instrumentation is observationally transparent — and that
   every benign DIALED run verifies. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module Minic = Dialed_minic.Minic

(* ----------------------------------------------------------------- *)
(* Generator: programs over a fixed environment.                      *)

type expr =
  | Const of int
  | Local of int        (* a0 / a1 *)
  | Param of int        (* p0 / p1 *)
  | Global of int       (* g0 / g1 *)
  | Elt of expr         (* t[(e) & 7] *)
  | Bin of string * expr * expr
  | Helper of expr      (* twice(e) *)

type stmt =
  | Set_local of int * expr
  | Set_global of int * expr
  | Set_elt of expr * expr
  | If_ of expr * stmt list * stmt list
  | Loop of int * stmt list   (* canned: for (i_ = 0; i_ < k; ...) *)

let rec pp_expr buf e =
  match e with
  | Const n -> Buffer.add_string buf (string_of_int n)
  | Local i -> Buffer.add_string buf (Printf.sprintf "a%d" i)
  | Param i -> Buffer.add_string buf (Printf.sprintf "p%d" i)
  | Global i -> Buffer.add_string buf (Printf.sprintf "g%d" i)
  | Elt e ->
    Buffer.add_string buf "t[(";
    pp_expr buf e;
    Buffer.add_string buf ") & 7]"
  | Bin (op, l, r) ->
    Buffer.add_char buf '(';
    pp_expr buf l;
    Buffer.add_string buf (" " ^ op ^ " ");
    pp_expr buf r;
    Buffer.add_char buf ')'
  | Helper e ->
    Buffer.add_string buf "twice(";
    pp_expr buf e;
    Buffer.add_char buf ')'

let loop_counter = ref 0

let rec pp_stmt buf indent s =
  let pad = String.make indent ' ' in
  match s with
  | Set_local (i, e) ->
    Buffer.add_string buf (Printf.sprintf "%sa%d = " pad i);
    pp_expr buf e;
    Buffer.add_string buf ";\n"
  | Set_global (i, e) ->
    Buffer.add_string buf (Printf.sprintf "%sg%d = " pad i);
    pp_expr buf e;
    Buffer.add_string buf ";\n"
  | Set_elt (idx, e) ->
    Buffer.add_string buf (Printf.sprintf "%st[(" pad);
    pp_expr buf idx;
    Buffer.add_string buf ") & 7] = ";
    pp_expr buf e;
    Buffer.add_string buf ";\n"
  | If_ (c, t, f) ->
    Buffer.add_string buf (pad ^ "if (");
    pp_expr buf c;
    Buffer.add_string buf ") {\n";
    List.iter (pp_stmt buf (indent + 2)) t;
    if f = [] then Buffer.add_string buf (pad ^ "}\n")
    else begin
      Buffer.add_string buf (pad ^ "} else {\n");
      List.iter (pp_stmt buf (indent + 2)) f;
      Buffer.add_string buf (pad ^ "}\n")
    end
  | Loop (k, body) ->
    incr loop_counter;
    let v = Printf.sprintf "i%d" !loop_counter in
    Buffer.add_string buf
      (Printf.sprintf "%sfor (int %s = 0; %s < %d; %s = %s + 1) {\n" pad v v k
         v v);
    List.iter (pp_stmt buf (indent + 2)) body;
    Buffer.add_string buf (pad ^ "}\n")

let program_source ?(critical = []) stmts =
  loop_counter := 0;
  let buf = Buffer.create 1024 in
  let mark name = if List.mem name critical then "critical " else "" in
  Buffer.add_string buf
    (Printf.sprintf
       {|%sint g0 = 3;
%sint g1 = -5;
%sint t[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int twice(int x) { return x + x; }
int main(int p0, int p1) {
  int a0 = 0;
  int a1 = 1;
|}
       (mark "g0") (mark "g1") (mark "t"));
  List.iter (pp_stmt buf 2) stmts;
  Buffer.add_string buf
    {|  return a0 + a1 + g0 + g1 + t[0] + t[3] + t[7];
}
|};
  Buffer.contents buf

(* generator *)
let gen_expr =
  QCheck.Gen.(
    fix
      (fun self depth ->
         if depth = 0 then
           oneof
             [ map (fun n -> Const n) (int_range (-40) 40);
               map (fun i -> Local i) (int_range 0 1);
               map (fun i -> Param i) (int_range 0 1);
               map (fun i -> Global i) (int_range 0 1) ]
         else
           frequency
             [ (3, self 0);
               (2,
                map2
                  (fun op (l, r) -> Bin (op, l, r))
                  (oneofl [ "+"; "-"; "&"; "|"; "^"; "<"; "=="; ">" ])
                  (pair (self (depth - 1)) (self (depth - 1))));
               (1, map (fun e -> Elt e) (self (depth - 1)));
               (1, map (fun e -> Helper e) (self (depth - 1))) ])
      2)

let gen_stmts =
  QCheck.Gen.(
    fix
      (fun self depth ->
         let stmt =
           frequency
             ([ (3, map2 (fun i e -> Set_local (i, e)) (int_range 0 1) gen_expr);
                (2, map2 (fun i e -> Set_global (i, e)) (int_range 0 1) gen_expr);
                (2, map2 (fun i e -> Set_elt (i, e)) gen_expr gen_expr) ]
              @
              if depth = 0 then []
              else
                [ (2,
                   map2
                     (fun c (t, f) -> If_ (c, t, f))
                     gen_expr
                     (pair (self (depth - 1)) (self (depth - 1))));
                  (1,
                   map2 (fun k body -> Loop (k, body)) (int_range 1 4)
                     (self (depth - 1))) ])
         in
         list_size (int_range 1 4) stmt)
      2)

let print_stmts stmts = program_source stmts

let arb_program = QCheck.make ~print:print_stmts gen_stmts

(* ----------------------------------------------------------------- *)

type observation = {
  result : int;
  globals : int * int;
  table : int list;
}

let observe variant stmts args =
  let source = program_source stmts in
  let compiled = Minic.compile source in
  let built =
    C.Pipeline.build ~variant ~data:compiled.Minic.data ~op:compiled.Minic.op
      ~or_min:0x0280 ()
  in
  let device = C.Pipeline.device built in
  let run = A.Device.run_operation ~args device in
  if not run.A.Device.completed then
    QCheck.Test.fail_reportf "did not complete (%s):\n%s"
      (C.Pipeline.variant_name variant)
      source;
  let mem = A.Device.memory device in
  let g0 = M.Assemble.symbol built.C.Pipeline.image "g0" in
  let g1 = M.Assemble.symbol built.C.Pipeline.image "g1" in
  let t = M.Assemble.symbol built.C.Pipeline.image "t" in
  ( { result = M.Cpu.get_reg (A.Device.cpu device) 15;
      globals = (M.Memory.peek16 mem g0, M.Memory.peek16 mem g1);
      table = List.init 8 (fun i -> M.Memory.peek16 mem (t + (2 * i))) },
    built,
    device )

let prop_variants_agree =
  QCheck.Test.make ~name:"random programs: all variants agree" ~count:30
    arb_program
    (fun stmts ->
       let args = [ 11; -7 ] in
       let plain, _, _ = observe C.Pipeline.Unmodified stmts args in
       let cfa, _, _ = observe C.Pipeline.Cfa_only stmts args in
       let full, _, _ = observe C.Pipeline.Full stmts args in
       if plain <> cfa || cfa <> full then
         QCheck.Test.fail_reportf
           "observations diverge on:\n%s\nplain result=%d cfa=%d full=%d"
           (program_source stmts) plain.result cfa.result full.result
       else true)

let prop_benign_runs_verify =
  QCheck.Test.make ~name:"random programs: benign runs verify" ~count:20
    arb_program
    (fun stmts ->
       let _, built, device = observe C.Pipeline.Full stmts [ 5; 9 ] in
       let report = A.Device.attest device ~challenge:"rand" in
       let outcome = C.Verifier.verify (C.Verifier.create built) report in
       if not outcome.C.Verifier.accepted then
         QCheck.Test.fail_reportf "benign random program rejected:\n%s\n%s"
           (program_source stmts)
           (Format.asprintf "%a" C.Verifier.pp_outcome outcome)
       else true)

let prop_tampered_log_never_verifies =
  QCheck.Test.make ~name:"random programs: any log flip is rejected"
    ~count:20
    (QCheck.pair arb_program (QCheck.int_range 1 200))
    (fun (stmts, flip_seed) ->
       let _, built, device = observe C.Pipeline.Full stmts [ 5; 9 ] in
       let report = A.Device.attest device ~challenge:"rand" in
       (* flip one bit of the used log region, position from the seed *)
       let or_data = Bytes.of_string report.A.Pox.or_data in
       let final_r4 = M.Cpu.get_reg (A.Device.cpu device) 4 in
       let layout = built.C.Pipeline.layout in
       let used = layout.A.Layout.or_max + 1 - (final_r4 + 2) in
       QCheck.assume (used > 0);
       let off =
         (final_r4 + 2 - layout.A.Layout.or_min) + (flip_seed mod used)
       in
       Bytes.set or_data off
         (Char.chr (Char.code (Bytes.get or_data off) lxor (1 lsl (flip_seed mod 8))));
       let forged = { report with A.Pox.or_data = Bytes.to_string or_data } in
       let outcome = C.Verifier.verify (C.Verifier.create built) forged in
       not outcome.C.Verifier.accepted)

let prop_cfa_walker_validates_random_paths =
  QCheck.Test.make
    ~name:"random programs: static CFA walk validates benign logs" ~count:20
    arb_program
    (fun stmts ->
       let source = program_source stmts in
       let compiled = Minic.compile source in
       let built =
         C.Pipeline.build ~variant:C.Pipeline.Cfa_only
           ~data:compiled.Dialed_minic.Minic.data
           ~op:compiled.Dialed_minic.Minic.op ~or_min:0x0280 ()
       in
       let device = C.Pipeline.device built in
       let run = A.Device.run_operation ~args:[ 3; 8 ] device in
       if not run.A.Device.completed then
         QCheck.Test.fail_reportf "cfa build did not complete:\n%s" source;
       let report = A.Device.attest device ~challenge:"walk" in
       let outcome = C.Cfa_verifier.verify built report in
       if not outcome.C.Cfa_verifier.ok then
         QCheck.Test.fail_reportf "static walk rejected a benign run:\n%s\n%s"
           source
           (match outcome.C.Cfa_verifier.error with
            | Some e -> Format.asprintf "%a" C.Cfa_verifier.pp_error e
            | None -> "?")
       else true)

(* ----------------------------------------------------------------- *)
(* Selective-attestation soundness: over random programs and random
   non-empty critical subsets, a selectively instrumented binary that
   passes the dataflow audit gives the same verdict as the fully
   instrumented one — accepted when benign, and identical accept/reject
   on every pre-run tampering of a critical global. The reduced
   discipline trades away detection of non-critical RAM tampering only;
   this pins that the trade never reaches the critical set.            *)

module S = Dialed_staticcheck

let build_disciplines source =
  let compiled = Minic.compile source in
  let build selective =
    let dfa_config =
      if selective then
        { C.Dfa.default_config with
          C.Dfa.selective =
            Some
              { C.Dfa.critical =
                  List.map fst compiled.Minic.criticals } }
      else C.Dfa.default_config
    in
    C.Pipeline.build ~dfa_config ~data:compiled.Minic.data
      ~critical:compiled.Minic.criticals ~op:compiled.Minic.op
      ~or_min:0x0280 ()
  in
  (build false, build true, compiled.Minic.criticals)

(* verdict on a device whose critical global [name] was tampered with
   before the run; None when the tampered run never completes *)
let tampered_verdict built name size =
  let device = C.Pipeline.device built in
  let mem = A.Device.memory device in
  let addr = M.Assemble.symbol built.C.Pipeline.image name in
  for k = 0 to (size / 2) - 1 do
    let a = addr + (2 * k) in
    M.Memory.poke16 mem a (M.Memory.peek16 mem a lxor 0x5A5A)
  done;
  let run = A.Device.run_operation ~args:[ 5; 9 ] device in
  if not run.A.Device.completed then None
  else begin
    let report = A.Device.attest device ~challenge:"sel-tamper" in
    let outcome = C.Verifier.verify_plan (C.Verifier.plan built) report in
    Some outcome.C.Verifier.accepted
  end

let prop_selective_soundness =
  QCheck.Test.make
    ~name:"random programs: selective verdicts match full on critical \
           tampering"
    ~count:15
    (QCheck.pair arb_program
       (QCheck.triple QCheck.bool QCheck.bool QCheck.bool))
    (fun (stmts, (c0, c1, ct)) ->
       QCheck.assume (c0 || c1 || ct);
       let critical =
         List.concat
           [ (if c0 then [ "g0" ] else []);
             (if c1 then [ "g1" ] else []);
             (if ct then [ "t" ] else []) ]
       in
       let source = program_source ~critical stmts in
       let full, sel, criticals = build_disciplines source in
       (* the reduced discipline is only sound behind a clean audit *)
       let audit = C.Verifier.audit_built sel in
       if not (S.Report.ok audit) then
         QCheck.Test.fail_reportf
           "selective build failed its own dataflow audit:\n%s\n%s" source
           (Format.asprintf "%a" S.Report.pp audit);
       (* benign runs: both disciplines accept *)
       let benign built =
         let device = C.Pipeline.device built in
         let run = A.Device.run_operation ~args:[ 5; 9 ] device in
         run.A.Device.completed
         &&
         let report = A.Device.attest device ~challenge:"sel-benign" in
         (C.Verifier.verify_plan (C.Verifier.plan built) report)
           .C.Verifier.accepted
       in
       if not (benign full && benign sel) then
         QCheck.Test.fail_reportf "benign run rejected:\n%s" source;
       (* per-critical tampering: identical verdicts *)
       List.iter
         (fun (name, size) ->
            let vf = tampered_verdict full name size in
            let vs = tampered_verdict sel name size in
            if vf <> vs then
              QCheck.Test.fail_reportf
                "verdicts diverge on tampered %s (full=%s selective=%s):\n%s"
                name
                (match vf with
                 | None -> "no-run"
                 | Some b -> string_of_bool b)
                (match vs with
                 | None -> "no-run"
                 | Some b -> string_of_bool b)
                source)
         criticals;
       true)

let suites =
  [ ("random-programs",
     List.map QCheck_alcotest.to_alcotest
       [ prop_variants_agree; prop_benign_runs_verify;
         prop_tampered_log_never_verifies;
         prop_cfa_walker_validates_random_paths;
         prop_selective_soundness ]) ]
