(* The device lifecycle layer: registry state machine, revocation
   sets, staged firmware rollout and the append-only journal — first as
   a unit corpus against the registry alone, then end-to-end through
   BOTH gateway engines (a revoked or quarantined device must be turned
   away identically by the evloop and threads engines, including a
   revocation landing mid-pipelined-window). *)

module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module N = Dialed_net
module L = Dialed_lifecycle.Lifecycle
module Apps = Dialed_apps.Apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let reg lc id key =
  match L.register lc ~id ~key_id:key with
  | Ok () -> ()
  | Error m -> Alcotest.failf "register %s: %s" id m

let state_of lc id =
  match L.find lc id with
  | Some d -> d.L.state
  | None -> Alcotest.failf "device %s not in registry" id

(* ------------------------------------------------------------- *)
(* State machine.                                                  *)

let test_state_machine () =
  let lc = L.create () in
  (match L.register lc ~id:"" ~key_id:"k" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "registered an empty id");
  (match L.register lc ~id:(String.make 129 'x') ~key_id:"k" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "registered a 129-byte id");
  reg lc "d1" "k1";
  check_bool "starts Registered" true (state_of lc "d1" = L.Registered);
  L.note_attested lc "d1";
  check_bool "attests" true (state_of lc "d1" = L.Attested);
  L.note_attested lc "d1";
  (match L.find lc "d1" with
   | Some d -> check_int "rounds accumulate" 2 d.L.rounds
   | None -> Alcotest.fail "d1 vanished");
  check_bool "quarantine moves it" true (L.quarantine lc "d1");
  check_bool "quarantined (admin)" true
    (state_of lc "d1" = L.Quarantined L.Admin);
  (* the one invariant everything else hangs off: nothing but an
     explicit release exits quarantine *)
  L.note_attested lc "d1";
  check_bool "attestation cannot exit quarantine" true
    (state_of lc "d1" = L.Quarantined L.Admin);
  reg lc "d1" "k1-fresh";
  check_bool "re-keying cannot exit quarantine" true
    (state_of lc "d1" = L.Quarantined L.Admin);
  (match L.release lc "d1" with
   | Ok () -> ()
   | Error m -> Alcotest.failf "release: %s" m);
  check_bool "release returns it to Registered" true
    (state_of lc "d1" = L.Registered);
  check_bool "quarantine of unknown id is a no-op" true
    (not (L.quarantine lc "ghost"));
  (match L.release lc "ghost" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "released an unknown device")

let test_revocation () =
  let lc = L.create () in
  reg lc "a" "k-shared";
  reg lc "b" "k-shared";
  reg lc "c" "k-other";
  L.note_attested lc "b";
  check_int "revocation sweeps every holder" 2 (L.revoke_key lc "k-shared");
  check_bool "revoked set remembers" true (L.is_revoked lc "k-shared");
  check_bool "a quarantined" true
    (state_of lc "a" = L.Quarantined L.Key_revoked);
  check_bool "b quarantined even though attested" true
    (state_of lc "b" = L.Quarantined L.Key_revoked);
  check_bool "c untouched" true (state_of lc "c" = L.Registered);
  check_int "second revocation finds nothing new" 0
    (L.revoke_key lc "k-shared");
  (* release refuses while the device still holds the revoked key *)
  (match L.release lc "a" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "released a device on a revoked key");
  (* re-provisioning with a fresh key is necessary but not sufficient:
     quarantine still needs its explicit release *)
  reg lc "a" "k-fresh";
  check_bool "re-keyed but still quarantined" true
    (state_of lc "a" = L.Quarantined L.Key_revoked);
  (match L.release lc "a" with
   | Ok () -> ()
   | Error m -> Alcotest.failf "release after re-key: %s" m);
  check_bool "released" true (state_of lc "a" = L.Registered);
  let s = L.summary lc in
  check_int "summary devices" 3 s.L.devices;
  check_int "summary quarantined" 1 s.L.quarantined;
  check_int "summary revoked keys" 1 s.L.revoked_keys

let test_admit_recheck () =
  (* open policy: unknown peers ride allow_anonymous *)
  let lc = L.create () in
  check_bool "anonymous admitted" true (L.admit lc ~device_id:"" ~firmware:"" = Ok ());
  check_bool "unknown admitted under open policy" true
    (L.admit lc ~device_id:"ghost" ~firmware:"" = Ok ());
  (* closed policy *)
  let lc = L.create ~allow_anonymous:false () in
  check_bool "anonymous refused" true
    (L.admit lc ~device_id:"" ~firmware:"" = Error L.Unknown_device);
  check_bool "unknown refused" true
    (L.admit lc ~device_id:"ghost" ~firmware:"" = Error L.Unknown_device);
  reg lc "dev" "k";
  check_bool "registered admitted" true
    (L.admit lc ~device_id:"dev" ~firmware:"" = Ok ());
  (* admit records the claimed firmware on the device *)
  check_bool "firmware claim admitted" true
    (L.admit lc ~device_id:"dev" ~firmware:"3.1" = Ok ());
  (match L.find lc "dev" with
   | Some d -> check_string "claim recorded" "3.1" d.L.firmware
   | None -> Alcotest.fail "dev vanished");
  (* quarantine closes the door until release *)
  ignore (L.quarantine lc "dev" : bool);
  check_bool "quarantined denied at admit" true
    (L.admit lc ~device_id:"dev" ~firmware:"" = Error L.Quarantined_device);
  check_bool "quarantined denied at recheck" true
    (L.recheck lc "dev" = Error L.Quarantined_device);
  (match L.release lc "dev" with Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "recheck passes after release" true (L.recheck lc "dev" = Ok ());
  (* a revocation that lands between admit and recheck quarantines on
     the recheck itself — that is the mid-window cut *)
  ignore (L.revoke_key lc "k" : int);
  check_bool "recheck catches a fresh revocation" true
    (L.recheck lc "dev" = Error L.Revoked);
  check_bool "and quarantines as a side effect" true
    (state_of lc "dev" = L.Quarantined L.Key_revoked);
  (* a device registered late onto an already-revoked key never gets in *)
  reg lc "latecomer" "k";
  check_bool "revoked key denied at admit" true
    (L.admit lc ~device_id:"latecomer" ~firmware:"" = Error L.Revoked);
  check_bool "latecomer quarantined" true
    (state_of lc "latecomer" = L.Quarantined L.Key_revoked)

(* ------------------------------------------------------------- *)
(* Staged rollout.                                                 *)

let test_rollout () =
  let lc = L.create () in
  check_bool "no policy: everything allowed" true
    (L.firmware_allowed lc "anything" && L.firmware_allowed lc "");
  L.set_stable lc "1.0";
  check_bool "stable allowed" true (L.firmware_allowed lc "1.0");
  check_bool "no claim always allowed" true (L.firmware_allowed lc "");
  check_bool "retired version refused" true (not (L.firmware_allowed lc "0.9"));
  (* begin_canary validates its inputs *)
  (match L.begin_canary lc ~version:"" ~percent:10 with
   | Error _ -> () | Ok () -> Alcotest.fail "empty canary version");
  (match L.begin_canary lc ~version:"1.1" ~percent:101 with
   | Error _ -> () | Ok () -> Alcotest.fail "percent 101");
  (match L.begin_canary lc ~version:"1.1" ~percent:(-1) with
   | Error _ -> () | Ok () -> Alcotest.fail "percent -1");
  (match L.begin_canary lc ~version:"1.0" ~percent:10 with
   | Error _ -> () | Ok () -> Alcotest.fail "canary equals stable");
  (match L.begin_canary lc ~version:"1.1" ~percent:50 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "canary allowed during rollout" true (L.firmware_allowed lc "1.1");
  check_bool "stable still allowed" true (L.firmware_allowed lc "1.0");
  (* promote retires the old stable in one step *)
  (match L.promote lc with Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "promoted" true
    (L.rollout lc = { L.stable = "1.1"; canary = None });
  check_bool "old stable now refused" true (not (L.firmware_allowed lc "1.0"));
  (match L.promote lc with
   | Error _ -> () | Ok () -> Alcotest.fail "promoted without a canary");
  (match L.rollback lc with
   | Error _ -> () | Ok () -> Alcotest.fail "rolled back without a canary");
  (* rollback abandons the canary, stable untouched *)
  (match L.begin_canary lc ~version:"2.0" ~percent:10 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  (match L.rollback lc with Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "rolled back" true
    (L.rollout lc = { L.stable = "1.1"; canary = None });
  check_bool "abandoned canary refused" true (not (L.firmware_allowed lc "2.0"))

let test_canary_cohorts () =
  let lc = L.create () in
  L.set_stable lc "1.0";
  (match L.begin_canary lc ~version:"1.1" ~percent:50 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  let ids = List.init 400 (fun i -> Printf.sprintf "dev-%04d" i) in
  let assigned = List.filter (L.assigned_canary lc) ids in
  let n = List.length assigned in
  (* the hash split is deterministic, so this is a fixed number — the
     band only guards against a degenerate assignment function *)
  check_bool "roughly half the fleet" true (n > 120 && n < 280);
  check_bool "assignment is deterministic" true
    (List.for_all (L.assigned_canary lc) assigned);
  (* expected_firmware is the operator's view of the same split *)
  List.iter
    (fun id ->
       check_string "expected follows assignment"
         (if L.assigned_canary lc id then "1.1" else "1.0")
         (L.expected_firmware lc id))
    ids;
  (* a fresh registry with the same policy draws the same cohort *)
  let lc2 = L.create () in
  L.set_stable lc2 "1.0";
  (match L.begin_canary lc2 ~version:"1.1" ~percent:50 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "same cohort across restarts" true
    (List.for_all (fun id -> L.assigned_canary lc id = L.assigned_canary lc2 id)
       ids);
  (* the edges behave *)
  (match L.begin_canary lc ~version:"1.2" ~percent:0 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "0 percent: nobody" true
    (not (List.exists (L.assigned_canary lc) ids));
  (match L.begin_canary lc ~version:"1.2" ~percent:100 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "100 percent: everybody" true
    (List.for_all (L.assigned_canary lc) ids)

(* ------------------------------------------------------------- *)
(* Journal.                                                        *)

let with_temp_journal f =
  let path = Filename.temp_file "dialed-lifecycle" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_journal_replay () =
  with_temp_journal @@ fun path ->
  let t = L.create ~journal:path () in
  reg t "alpha" "k1";
  (* ids with journal metacharacters must round-trip *)
  reg t "tab\tid" "k2";
  reg t "pct%id" "k3";
  L.note_attested t "alpha";
  ignore (L.quarantine t "pct%id" : bool);
  ignore (L.revoke_key t "k2" : int);
  L.set_stable t "1.0";
  (match L.begin_canary t ~version:"1.1" ~percent:25 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  let devices = L.devices t and summary = L.summary t in
  L.close t;
  let t2 = L.create ~journal:path () in
  check_bool "devices replay byte-for-byte" true (L.devices t2 = devices);
  check_bool "summary replays" true (L.summary t2 = summary);
  check_bool "revoked set replays" true (L.is_revoked t2 "k2");
  check_bool "rollout replays" true
    (L.rollout t2 = { L.stable = "1.0"; canary = Some ("1.1", 25) });
  (* the reopened registry keeps journaling where the old one stopped *)
  reg t2 "omega" "k9";
  L.close t2;
  let t3 = L.create ~journal:path () in
  check_bool "post-replay mutations persist" true (L.find t3 "omega" <> None);
  check_int "all four devices" 4 (List.length (L.devices t3));
  L.close t3

let test_journal_torn_line () =
  with_temp_journal @@ fun path ->
  let t = L.create ~journal:path () in
  reg t "keep" "k";
  L.close t;
  (* crash mid-append: a final record without its newline is dropped *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "register\ttorn-dev";
  close_out oc;
  let t2 = L.create ~journal:path () in
  check_bool "torn record dropped" true (L.find t2 "torn-dev" = None);
  check_bool "intact record survives" true (L.find t2 "keep" <> None);
  L.close t2;
  (* garbled-but-complete lines are skipped, never fatal: terminating
     the torn line turns it into a short (2-field) register record, and
     the next line is pure nonsense *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\nnonsense\tfields\there\n";
  close_out oc;
  let t3 = L.create ~journal:path () in
  check_bool "short record skipped" true (L.find t3 "torn-dev" = None);
  check_int "registry intact" 1 (List.length (L.devices t3));
  L.close t3

(* ------------------------------------------------------------- *)
(* QCheck: across any operation sequence, the only transition out of
   quarantine is an explicit successful release.                    *)

let qcheck_no_silent_release =
  let id a = "d" ^ string_of_int (a mod 5) in
  let key b = "k" ^ string_of_int (b mod 3) in
  let apply lc (tag, a, b) =
    match tag mod 6 with
    | 0 -> ignore (L.register lc ~id:(id a) ~key_id:(key b) : (unit, string) result); None
    | 1 -> ignore (L.revoke_key lc (key b) : int); None
    | 2 -> ignore (L.quarantine lc (id a) : bool); None
    | 3 ->
      (match L.release lc (id a) with
       | Ok () -> Some (id a)  (* the one sanctioned exit *)
       | Error _ -> None)
    | 4 -> L.note_attested lc (id a); None
    | _ ->
      ignore
        (L.admit lc ~device_id:(id a) ~firmware:"" : (unit, L.denial) result);
      None
  in
  QCheck.Test.make
    ~name:"lifecycle: quarantine only exits through release" ~count:300
    QCheck.(list (triple small_nat small_nat small_nat))
    (fun ops ->
       let lc = L.create () in
       List.for_all
         (fun op ->
            let quarantined_before =
              List.filter_map
                (fun d ->
                   match d.L.state with
                   | L.Quarantined _ -> Some d.L.id
                   | L.Registered | L.Attested -> None)
                (L.devices lc)
            in
            let released = apply lc op in
            List.for_all
              (fun qid ->
                 released = Some qid
                 || (match state_of lc qid with
                     | L.Quarantined _ -> true
                     | L.Registered | L.Attested -> false))
              quarantined_before)
         ops)

(* ------------------------------------------------------------- *)
(* The same rules enforced end-to-end through the gateway, under
   BOTH engines.                                                   *)

let lc_stats (stats : N.Server.stats) =
  match stats.N.Server.lifecycle with
  | Some l -> l
  | None -> Alcotest.fail "no lifecycle section in stats"

let lifecycle_config ?resolve_plan ?plan_cache engine lc =
  let base = Test_net.gateway_config engine in
  { base with
    N.Server.lifecycle = Some lc;
    resolve_plan;
    plan_cache =
      (match plan_cache with Some _ -> plan_cache | None -> base.N.Server.plan_cache) }

let test_gw_revoked_at_handshake engine =
  let lc = L.create () in
  reg lc "dev-r" "k-r";
  ignore (L.revoke_key lc "k-r" : int);
  Test_net.with_gateway ~config:(lifecycle_config engine lc) ~engine
    (fun ~server ~dial ~device ->
       (* pipelined greeting: the denial is data, not an exception *)
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:4
           ~device ~device_id:"dev-r" ~rounds:4 conn
       in
       N.Transport.close conn;
       (match session.N.Client.denied with
        | Some (N.Codec.Revoked, _) -> ()
        | Some (c, _) ->
          Alcotest.failf "wrong cause %s" (N.Codec.denial_to_string c)
        | None -> Alcotest.fail "revoked prover was served");
       check_int "nothing granted" 0 session.N.Client.granted;
       check_int "no results" 0 (Array.length session.N.Client.results);
       (* legacy greeting: the typed exception *)
       let conn = dial () in
       (match
          N.Client.attest_rounds ~config:Test_net.client_config ~device
            ~device_id:"dev-r" ~rounds:1 conn
        with
        | _ -> Alcotest.fail "revoked prover was served (legacy)"
        | exception N.Client.Denied (N.Codec.Revoked, _) -> ());
       N.Transport.close conn;
       check_bool "denial quarantined the device" true
         (state_of lc "dev-r" = L.Quarantined L.Key_revoked);
       let stats = N.Server.stop server in
       let l = lc_stats stats in
       check_int "both denials counted" 2 l.N.Server.lc_denied_revoked;
       check_int "nothing admitted" 0 l.N.Server.lc_admitted;
       check_int "no verdicts issued" 0 stats.N.Server.verdicts_accepted)

let test_gw_stale_firmware engine =
  let lc = L.create () in
  reg lc "dev-fw" "k-fw";
  L.set_stable lc "2.0";
  Test_net.with_gateway ~config:(lifecycle_config engine lc) ~engine
    (fun ~server ~dial ~device ->
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:2
           ~firmware:"0.9" ~device ~device_id:"dev-fw" ~rounds:2 conn
       in
       N.Transport.close conn;
       (match session.N.Client.denied with
        | Some (N.Codec.Stale_firmware, _) -> ()
        | _ -> Alcotest.fail "retired firmware was admitted");
       (* stale firmware is a policy miss, not an attack: the device is
          NOT quarantined and attests fine once it updates *)
       check_bool "still Registered after stale denial" true
         (state_of lc "dev-fw" = L.Registered);
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:2
           ~firmware:"2.0" ~device ~device_id:"dev-fw" ~rounds:3 conn
       in
       N.Transport.close conn;
       check_bool "updated device served" true (session.N.Client.denied = None);
       check_bool "all rounds accepted" true
         (Array.for_all
            (fun (r : N.Client.pipelined_round) -> r.N.Client.p_accepted)
            session.N.Client.results);
       check_bool "device now Attested" true (state_of lc "dev-fw" = L.Attested);
       let stats = N.Server.stop server in
       let l = lc_stats stats in
       check_int "one stale denial" 1 l.N.Server.lc_denied_stale;
       check_int "one admission" 1 l.N.Server.lc_admitted;
       check_int "three credited verdicts" 3 l.N.Server.lc_attested)

let test_gw_midsession_revocation engine =
  (* the window is granted, a round completes, THEN the key is pulled:
     the very next frame gets a typed Denied and no verdict is ever
     delivered past the revocation *)
  let lc = L.create () in
  reg lc "dev-mid" "k-mid";
  Test_net.with_gateway ~config:(lifecycle_config engine lc) ~engine
    (fun ~server ~dial ~device ->
       let conn = dial () in
       let chan = N.Chan.create conn in
       let recv () =
         match N.Chan.recv chan ~deadline:2.0 () with
         | Ok (Some m) -> m
         | _ -> Alcotest.fail "gateway hung up"
       in
       let granted =
         Test_net.pipelined_handshake chan ~device_id:"dev-mid" ~window:4
       in
       check_int "window granted before revocation" 4 granted;
       (* one honest round proves the session was healthy *)
       N.Chan.send chan N.Codec.Ready;
       let seq0, wire0 =
         match recv () with
         | N.Codec.Request_seq { seq; challenge; args } ->
           let req = { C.Protocol.challenge; args } in
           let report, _ = C.Protocol.prover_execute (device ()) req in
           (seq, A.Wire.encode report)
         | m -> Alcotest.failf "expected Request, got %a" N.Codec.pp_msg m
       in
       N.Chan.send chan (N.Codec.Report_seq { seq = seq0; wire = wire0 });
       (match recv () with
        | N.Codec.Verdict_seq { seq; accepted = true; _ } when seq = seq0 -> ()
        | m -> Alcotest.failf "expected Verdict, got %a" N.Codec.pp_msg m);
       (* now the operator pulls the key mid-window *)
       ignore (L.revoke_key lc "k-mid" : int);
       N.Chan.send chan N.Codec.Ready;
       (match recv () with
        | N.Codec.Denied { cause = N.Codec.Revoked; _ } -> ()
        | m -> Alcotest.failf "expected Denied, got %a" N.Codec.pp_msg m);
       (* the session is cut: no verdict, no request, nothing follows
          the Denied — the connection just ends *)
       (match N.Chan.recv chan ~deadline:1.0 () with
        | Ok None -> ()
        | Error _ -> ()
        | exception N.Transport.Closed -> ()
        | exception N.Transport.Timeout -> ()
        | Ok (Some m) ->
          Alcotest.failf "frame after Denied: %a" N.Codec.pp_msg m);
       N.Transport.close conn;
       check_bool "revocation quarantined mid-session" true
         (state_of lc "dev-mid" = L.Quarantined L.Key_revoked);
       let stats = N.Server.stop server in
       let l = lc_stats stats in
       check_int "counted as a mid-session cut" 1
         l.N.Server.lc_midsession_denials;
       check_int "admitted once" 1 l.N.Server.lc_admitted;
       check_int "only the pre-revocation verdict credited" 1
         l.N.Server.lc_attested)

let test_gw_quarantine_release engine =
  let lc = L.create () in
  reg lc "dev-q" "k-q";
  ignore (L.quarantine lc "dev-q" : bool);
  Test_net.with_gateway ~config:(lifecycle_config engine lc) ~engine
    (fun ~server ~dial ~device ->
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:2
           ~device ~device_id:"dev-q" ~rounds:2 conn
       in
       N.Transport.close conn;
       (match session.N.Client.denied with
        | Some (N.Codec.Quarantined, _) -> ()
        | _ -> Alcotest.fail "quarantined prover was served");
       (* still quarantined: a second attempt changes nothing *)
       check_bool "stays quarantined" true
         (state_of lc "dev-q" = L.Quarantined L.Admin);
       (match L.release lc "dev-q" with
        | Ok () -> () | Error m -> Alcotest.fail m);
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:2
           ~device ~device_id:"dev-q" ~rounds:2 conn
       in
       N.Transport.close conn;
       check_bool "served after release" true (session.N.Client.denied = None);
       check_bool "all accepted" true
         (Array.for_all
            (fun (r : N.Client.pipelined_round) -> r.N.Client.p_accepted)
            session.N.Client.results);
       check_bool "re-attested" true (state_of lc "dev-q" = L.Attested);
       let stats = N.Server.stop server in
       let l = lc_stats stats in
       check_int "one quarantine denial" 1 l.N.Server.lc_denied_quarantined;
       check_int "one admission" 1 l.N.Server.lc_admitted)

let test_gw_anonymous_policy engine =
  (* open registry: peers outside the registry are served and counted
     as anonymous, never credited as attested *)
  let lc = L.create () in
  reg lc "dev-known" "k";
  Test_net.with_gateway ~config:(lifecycle_config engine lc) ~engine
    (fun ~server ~dial ~device ->
       List.iter
         (fun id ->
            let conn = dial () in
            let session =
              N.Client.attest_pipelined ~config:Test_net.client_config
                ~window:2 ~device ~device_id:id ~rounds:1 conn
            in
            N.Transport.close conn;
            check_bool (id ^ " served") true (session.N.Client.denied = None))
         [ "ghost-1"; "ghost-2"; "dev-known" ];
       let stats = N.Server.stop server in
       let l = lc_stats stats in
       check_int "two anonymous sessions" 2 l.N.Server.lc_anonymous;
       check_int "one registered admission" 1 l.N.Server.lc_admitted;
       check_int "only the registered device credited" 1 l.N.Server.lc_attested);
  (* closed registry: same traffic, unknowns now bounce *)
  let lc = L.create ~allow_anonymous:false () in
  reg lc "dev-known" "k";
  Test_net.with_gateway ~config:(lifecycle_config engine lc) ~engine
    (fun ~server ~dial ~device ->
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:2
           ~device ~device_id:"ghost-1" ~rounds:1 conn
       in
       N.Transport.close conn;
       (match session.N.Client.denied with
        | Some (N.Codec.Unknown_device, _) -> ()
        | _ -> Alcotest.fail "unknown prover served under closed policy");
       let conn = dial () in
       let session =
         N.Client.attest_pipelined ~config:Test_net.client_config ~window:2
           ~device ~device_id:"dev-known" ~rounds:1 conn
       in
       N.Transport.close conn;
       check_bool "registered device still served" true
         (session.N.Client.denied = None);
       let stats = N.Server.stop server in
       let l = lc_stats stats in
       check_int "unknown denial counted" 1 l.N.Server.lc_denied_unknown;
       check_int "no anonymous sessions" 0 l.N.Server.lc_anonymous)

let test_gw_staged_rollout engine =
  (* two firmware versions live at once: the canary cohort's reports
     verify against the canary app's plan, everyone else against the
     stable plan, and both plans stay resident in the operator's LRU *)
  let stable_app = Apps.fire_sensor and canary_app = Apps.ultrasonic_ranger in
  let stable_built = Apps.build stable_app in
  let canary_built = Apps.build canary_app in
  let pcache = F.Plan.cache () in
  let stable_plan = F.Plan.find_or_build pcache stable_built in
  let lc = L.create ~allow_anonymous:false () in
  L.set_stable lc "1.0";
  (match L.begin_canary lc ~version:"1.1" ~percent:50 with
   | Ok () -> () | Error m -> Alcotest.fail m);
  (* draw ids until both cohorts have four members — the split is a
     deterministic hash, so this terminates the same way every run *)
  let canary_ids = ref [] and stable_ids = ref [] and i = ref 0 in
  while List.length !canary_ids < 4 || List.length !stable_ids < 4 do
    let id = Printf.sprintf "roll-%04d" !i in
    incr i;
    if L.assigned_canary lc id then begin
      if List.length !canary_ids < 4 then canary_ids := id :: !canary_ids
    end
    else if List.length !stable_ids < 4 then stable_ids := id :: !stable_ids
  done;
  let fleet = !canary_ids @ !stable_ids in
  List.iteri (fun i id -> reg lc id (Printf.sprintf "k-%d" i)) fleet;
  let resolve_plan = function
    | "1.0" -> Some (F.Plan.find_or_build pcache stable_built)
    | "1.1" -> Some (F.Plan.find_or_build pcache canary_built)
    | _ -> None
  in
  let config =
    lifecycle_config ~resolve_plan ~plan_cache:pcache engine lc
  in
  let listener, dial = N.Transport.loopback_listener () in
  let server = N.Server.create ~config ~plan:stable_plan listener in
  N.Server.start server;
  Fun.protect
    ~finally:(fun () -> ignore (N.Server.stop server))
    (fun () ->
       List.iter
         (fun id ->
            let app, built =
              if L.assigned_canary lc id then (canary_app, canary_built)
              else (stable_app, stable_built)
            in
            let device () =
              let d = C.Pipeline.device built in
              app.Apps.setup d;
              d
            in
            let fw = L.expected_firmware lc id in
            let conn = dial () in
            let session =
              N.Client.attest_pipelined ~config:Test_net.client_config
                ~window:2 ~firmware:fw ~device ~device_id:id ~rounds:2 conn
            in
            N.Transport.close conn;
            check_bool (id ^ " served") true (session.N.Client.denied = None);
            check_bool (id ^ " all accepted") true
              (Array.for_all
                 (fun (r : N.Client.pipelined_round) -> r.N.Client.p_accepted)
                 session.N.Client.results))
         fleet;
       check_bool "a canary device attested" true
         (state_of lc (List.hd !canary_ids) = L.Attested);
       check_bool "a stable device attested" true
         (state_of lc (List.hd !stable_ids) = L.Attested);
       let stats = N.Server.stats server in
       let l = lc_stats stats in
       check_int "whole fleet admitted" 8 l.N.Server.lc_admitted;
       check_int "no denials" 0
         (l.N.Server.lc_denied_unknown + l.N.Server.lc_denied_revoked
          + l.N.Server.lc_denied_quarantined + l.N.Server.lc_denied_stale);
       check_int "every verdict credited" 16 l.N.Server.lc_attested;
       (* the rollout's plan-cache witness: exactly the two versions'
          plans were ever built, nothing was evicted *)
       match stats.N.Server.plan_cache with
       | None -> Alcotest.fail "no plan-cache section in stats"
       | Some pc ->
         check_int "two plan builds" 2 pc.F.Plan.cc_misses;
         check_int "no evictions" 0 pc.F.Plan.cc_evictions;
         check_int "both plans resident" 2 pc.F.Plan.cc_resident)

(* ------------------------------------------------------------- *)

let suites =
  [ ("lifecycle",
     [ Alcotest.test_case "state machine" `Quick test_state_machine;
       Alcotest.test_case "revocation" `Quick test_revocation;
       Alcotest.test_case "admit and recheck" `Quick test_admit_recheck;
       Alcotest.test_case "rollout" `Quick test_rollout;
       Alcotest.test_case "canary cohorts" `Quick test_canary_cohorts;
       Alcotest.test_case "journal replay" `Quick test_journal_replay;
       Alcotest.test_case "journal torn line" `Quick test_journal_torn_line;
       QCheck_alcotest.to_alcotest qcheck_no_silent_release ]);
    ("lifecycle-gateway",
     (* the full lifecycle corpus, once per engine: both engines must
        turn away the same peers with the same typed causes *)
     List.concat_map
       (fun (tag, engine) ->
          let case name f =
            Alcotest.test_case (name ^ " [" ^ tag ^ "]") `Quick
              (fun () -> f engine)
          in
          [ case "revoked at handshake" test_gw_revoked_at_handshake;
            case "stale firmware" test_gw_stale_firmware;
            case "revoked mid-window" test_gw_midsession_revocation;
            case "quarantine and release" test_gw_quarantine_release;
            case "anonymous policy" test_gw_anonymous_policy;
            case "staged rollout" test_gw_staged_rollout ])
       [ ("evloop", N.Server.Evloop); ("threads", N.Server.Threads) ]) ]
