(* CFG recovery and static path validation. *)

module M = Dialed_msp430
module Cfg = Dialed_cfg
module Memory = M.Memory
module Assemble = M.Assemble
module Asm_parse = M.Asm_parse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build_cfg source =
  let img = Assemble.assemble (Asm_parse.parse source) in
  let mem = Memory.create () in
  Assemble.load img mem;
  let lo, hi =
    match img.Assemble.segments with
    | [ (base, bytes) ] -> (base, base + String.length bytes - 1)
    | _ -> Alcotest.fail "expected one segment"
  in
  (Cfg.Basic_block.build mem ~lo ~hi ~entry:lo, img)

let test_straight_line () =
  let cfg, _ =
    build_cfg {|
        .org 0xe000
    start:
        mov #1, r5
        add #2, r5
        jmp $
    |}
  in
  check_int "one block ending in halt" 1
    (List.length (Cfg.Basic_block.blocks cfg))

let test_diamond () =
  let cfg, img =
    build_cfg {|
        .org 0xe000
    start:
        cmp #0, r15
        jeq else_
        mov #1, r5
        jmp join
    else_:
        mov #2, r5
    join:
        mov r5, r6
        jmp $
    |}
  in
  let at name = Assemble.symbol img name in
  let succs = Cfg.Basic_block.successors cfg 0xE000 in
  check_bool "cond has two successors" true (List.length succs = 2);
  check_bool "taken edge" true (List.mem (at "else_") succs);
  let join_succs = Cfg.Basic_block.successors cfg (at "else_") in
  check_bool "else falls to join" true (List.mem (at "join") join_succs)

let test_call_and_return_sites () =
  let cfg, img =
    build_cfg {|
        .org 0xe000
    start:
        call #sub
    after:
        jmp $
    sub:
        mov #1, r5
        ret
    |}
  in
  let after = Assemble.symbol img "after" in
  Alcotest.(check (list int)) "return site" [ after ]
    (Cfg.Basic_block.call_return_sites cfg);
  check_bool "call edge to sub" true
    (List.mem (Assemble.symbol img "sub")
       (Cfg.Basic_block.successors cfg 0xE000))

let test_instruction_starts () =
  let cfg, _ =
    build_cfg {|
        .org 0xe000
    start:
        mov #0x1234, r5   ; 4 bytes
        jmp $
    |}
  in
  check_bool "0xe000 is code" true (Cfg.Basic_block.is_instruction_start cfg 0xE000);
  check_bool "0xe002 is the ext word" false
    (Cfg.Basic_block.is_instruction_start cfg 0xE002);
  check_bool "0xe004 is code" true (Cfg.Basic_block.is_instruction_start cfg 0xE004)

let test_block_containing () =
  let cfg, _ =
    build_cfg {|
        .org 0xe000
    start:
        mov #1, r5
        mov #2, r6
        jmp $
    |}
  in
  match Cfg.Basic_block.block_containing cfg 0xE002 with
  | Some b -> check_int "block starts at entry" 0xE000 b.Cfg.Basic_block.b_start
  | None -> Alcotest.fail "no block"

(* ------------------------------------------------------------- *)
(* Path validation.                                                *)

let diamond_source = {|
        .org 0xe000
    start:
        cmp #0, r15
        jeq else_
        mov #1, r5
        jmp join
    else_:
        mov #2, r5
    join:
        call #sub
    after:
        jmp $
    sub:
        ret
    |}

let test_valid_paths () =
  let cfg, img = build_cfg diamond_source in
  let at name = Assemble.symbol img name in
  let fall = 0xE004 (* after the 2-word... cmp #0,r15 is 1 word CG: 2 bytes; jeq at 0xe002; fall = 0xe004 *) in
  (* taken path: else_ -> (fallthrough join) -> call sub -> ret after *)
  (match
     Cfg.Validate.check_path cfg
       ~dests:[ at "else_"; at "sub"; at "after" ] ()
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "taken path rejected: %a" Cfg.Validate.pp_error e);
  (* fallthrough path adds the jmp join edge *)
  (match
     Cfg.Validate.check_path cfg
       ~dests:[ fall; at "join"; at "sub"; at "after" ] ()
   with
   | Ok () -> ()
   | Error e ->
     Alcotest.failf "fallthrough path rejected: %a" Cfg.Validate.pp_error e)

let test_illegal_edge () =
  let cfg, img = build_cfg diamond_source in
  let at name = Assemble.symbol img name in
  (* jumping straight to 'after' from the conditional is not an edge *)
  match Cfg.Validate.check_path cfg ~dests:[ at "after" ] () with
  | Error (Cfg.Validate.Illegal_edge _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Cfg.Validate.pp_error e
  | Ok () -> Alcotest.fail "illegal edge accepted"

let test_bad_return () =
  let cfg, img = build_cfg diamond_source in
  let at name = Assemble.symbol img name in
  (* return to else_ instead of the call site *)
  match
    Cfg.Validate.check_path cfg
      ~dests:[ at "else_"; at "sub"; at "else_" ] ()
  with
  | Error (Cfg.Validate.Bad_return _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Cfg.Validate.pp_error e
  | Ok () -> Alcotest.fail "bad return accepted"

let test_truncated_log () =
  let cfg, img = build_cfg diamond_source in
  let at name = Assemble.symbol img name in
  match Cfg.Validate.check_path cfg ~dests:[ at "else_"; at "sub" ] () with
  | Error (Cfg.Validate.Log_truncated _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Cfg.Validate.pp_error e
  | Ok () -> Alcotest.fail "truncated log accepted"

let test_trailing_entries () =
  let cfg, img = build_cfg diamond_source in
  let at name = Assemble.symbol img name in
  match
    Cfg.Validate.check_path cfg
      ~dests:[ at "else_"; at "sub"; at "after"; 0xBEEF ] ()
  with
  | Error (Cfg.Validate.Trailing_entries _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Cfg.Validate.pp_error e
  | Ok () -> Alcotest.fail "trailing entries accepted"

let test_mid_instruction_dest () =
  let cfg, _ =
    build_cfg {|
        .org 0xe000
    start:
        mov #0x1234, r5
        br r5             ; indirect: any code destination is plausible
    next:
        jmp $
    |}
  in
  (* 0xE002 is the extension word of the first mov, not an instruction *)
  match Cfg.Validate.check_path cfg ~dests:[ 0xE002 ] () with
  | Error (Cfg.Validate.Not_instruction_start _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Cfg.Validate.pp_error e
  | Ok () -> Alcotest.fail "mid-instruction destination accepted"

let test_unknown_block () =
  let cfg, _ =
    build_cfg {|
        .org 0xe000
    start:
        mov #0x1234, r5
        br r5
    next:
        jmp $
    |}
  in
  (* 0xE004 (the br itself) is an instruction start but not a block
     leader, so landing there is an unknown block, not a mid-instruction
     destination *)
  match Cfg.Validate.check_path cfg ~dests:[ 0xE004 ] () with
  | Error (Cfg.Validate.Unknown_block a) -> check_int "address" 0xE004 a
  | Error e -> Alcotest.failf "wrong error: %a" Cfg.Validate.pp_error e
  | Ok () -> Alcotest.fail "unknown block accepted"

(* golden strings: verifier diagnostics are part of the tool's surface *)
let test_error_messages () =
  let golden expected err =
    Alcotest.(check string) expected expected
      (Format.asprintf "%a" Cfg.Validate.pp_error err)
  in
  golden "3 unexplained trailing log entries"
    (Cfg.Validate.Trailing_entries 3);
  golden "destination 0xe001 is not an instruction boundary"
    (Cfg.Validate.Not_instruction_start 0xE001);
  golden "no block starts at 0xbeef" (Cfg.Validate.Unknown_block 0xBEEF);
  golden "control-flow log exhausted inside block 0xe000"
    (Cfg.Validate.Log_truncated { at = 0xE000 });
  golden "illegal edge at 0xe000 -> 0xe010 (allowed: 0xe004 0xe008)"
    (Cfg.Validate.Illegal_edge
       { at = 0xE000; dest = 0xE010; allowed = [ 0xE004; 0xE008 ] });
  golden "return at 0xe00a to 0xe000, call site expects 0xe004"
    (Cfg.Validate.Bad_return
       { at = 0xE00A; dest = 0xE000; expected = Some 0xE004 });
  golden "return at 0xe00a to 0xe000 with an empty shadow stack"
    (Cfg.Validate.Bad_return { at = 0xE00A; dest = 0xE000; expected = None })

let suites =
  [ ("cfg",
     [ Alcotest.test_case "straight line" `Quick test_straight_line;
       Alcotest.test_case "diamond" `Quick test_diamond;
       Alcotest.test_case "calls and return sites" `Quick test_call_and_return_sites;
       Alcotest.test_case "instruction starts" `Quick test_instruction_starts;
       Alcotest.test_case "block containing" `Quick test_block_containing;
       Alcotest.test_case "valid paths" `Quick test_valid_paths;
       Alcotest.test_case "illegal edge" `Quick test_illegal_edge;
       Alcotest.test_case "bad return" `Quick test_bad_return;
       Alcotest.test_case "truncated log" `Quick test_truncated_log;
       Alcotest.test_case "trailing entries" `Quick test_trailing_entries;
       Alcotest.test_case "mid-instruction dest" `Quick test_mid_instruction_dest;
       Alcotest.test_case "unknown block" `Quick test_unknown_block;
       Alcotest.test_case "error messages" `Quick test_error_messages ]) ]
