(* Unit tests of the instrumentation passes themselves: structure of the
   emitted code, contract enforcement, and configuration knobs. *)

module M = Dialed_msp430
module P = M.Program
module Isa = M.Isa
module T = Dialed_tinycfa.Instrument
module Dfa = Dialed_core.Dfa
module Asm_parse = M.Asm_parse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Asm_parse.parse

let expect_cfa_error name prog =
  match T.instrument prog with
  | exception T.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected Tiny-CFA to reject" name

let expect_dfa_error name prog =
  match Dfa.instrument prog with
  | exception Dfa.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected DIALED pass to reject" name

(* ------------------------------------------------------------- *)
(* Tiny-CFA.                                                       *)

let test_cfa_log_sites () =
  let prog =
    parse {|
    op:
        mov #1, r5
        call #sub
        jmp end_
    sub:
        ret
    end_:
        ret
    |}
  in
  let out = T.instrument prog in
  (* call + jmp + 2 rets = 4 log sites *)
  check_int "log sites" 4 (T.count_logged_sites out)

let test_cfa_conditional_logs_both_arms () =
  let prog =
    parse {|
    op:
        cmp #1, r15
        jeq somewhere
        mov #1, r5
    somewhere:
        ret
    |}
  in
  let out = T.instrument prog in
  (* jeq -> 2 arms + final ret = 3 sites *)
  check_int "both arms logged" 3 (T.count_logged_sites out)

let test_cfa_no_uncond_config () =
  let prog = parse "op:\n    jmp end_\nend_:\n    ret\n" in
  let default = T.instrument prog in
  let no_uncond =
    T.instrument ~config:{ T.log_uncond_jumps = false; check_stores = true }
      prog
  in
  check_int "default logs the jmp" 2 (T.count_logged_sites default);
  check_int "config drops it" 1 (T.count_logged_sites no_uncond)

let test_cfa_store_checks_optional () =
  let prog =
    parse {|
    op:
        mov #0x0200, r5
        mov r6, 2(r5)
        ret
    |}
  in
  let with_checks = P.instr_count (T.instrument prog) in
  let without =
    P.instr_count
      (T.instrument ~config:{ T.log_uncond_jumps = true; check_stores = false }
         prog)
  in
  check_bool "store check adds instructions" true (with_checks > without)

let test_cfa_rejects_r4 () =
  expect_cfa_error "r4 use" (parse "op:\n    mov r4, r5\n    ret\n")

let test_cfa_rejects_reti () =
  expect_cfa_error "reti" (parse "op:\n    reti\n")

let test_cfa_rejects_computed_branch () =
  expect_cfa_error "add to pc" (parse "op:\n    add r5, pc\n    ret\n")

let test_cfa_rejects_flag_hazard () =
  (* a store between the cmp and its jump would get a check inserted *)
  expect_cfa_error "store between cmp and jcc"
    (parse {|
    op:
        mov #0x0200, r5
        cmp #1, r15
        mov r6, 2(r5)
        jeq op
        ret
    |})

let test_cfa_abort_loop_emitted () =
  let out = T.instrument (parse "op:\n    ret\n") in
  check_bool "abort label present" true (P.exists_label out T.abort_label)

let test_cfa_entry_check_first () =
  let out = T.instrument (parse "op:\n    mov #1, r5\n    ret\n") in
  (* first instruction after the leading label must be the r4 check *)
  let rec first_instr items =
    match items with
    | P.Synth i :: _ | P.Instr i :: _ -> Some i
    | _ :: rest -> first_instr rest
    | [] -> None
  in
  (match first_instr out with
   | Some (P.Two (Isa.CMP, Isa.Word, P.Imm (P.Lab s), P.Reg 4))
     when s = T.or_max_symbol -> ()
   | Some i -> Alcotest.failf "unexpected first instruction %a" P.pp_instr i
   | None -> Alcotest.fail "no instructions")

(* ------------------------------------------------------------- *)
(* DIALED (DFA) pass.                                              *)

let count_inputs prog = Dfa.count_input_sites prog

let test_dfa_f3_always_logs_nine () =
  let out = Dfa.instrument (parse "op:\n    ret\n") in
  check_int "sp + r8..r15" 9 (count_inputs out)

let test_dfa_static_read_logged () =
  let out = Dfa.instrument (parse "op:\n    mov &0x0140, r15\n    ret\n") in
  check_int "9 + 1 static input" 10 (count_inputs out)

let test_dfa_stack_reads_skipped () =
  let out =
    Dfa.instrument
      (parse {|
    op:
        mov 2(sp), r15
        mov -4(r6), r14
        mov @sp, r13
        ret
    |})
  in
  check_int "frame reads are not inputs" 9 (count_inputs out)

let test_dfa_frame_trust_config () =
  let prog = parse "op:\n    mov -4(r6), r14\n    ret\n" in
  let trusted = Dfa.instrument prog in
  let untrusted =
    Dfa.instrument
      ~config:{ Dfa.static_fast_path = true; trust_frame_reads = false; selective = None }
      prog
  in
  check_int "trusted: no extra site" 9 (count_inputs trusted);
  check_int "untrusted: runtime-checked site" 10 (count_inputs untrusted)

let test_dfa_dynamic_read_checked () =
  let prog = parse "op:\n    mov @r15, r14\n    ret\n" in
  let out = Dfa.instrument prog in
  check_int "dynamic read site" 10 (count_inputs out);
  (* the range check reads the saved stack base at OR_MAX *)
  let reads_base =
    List.exists
      (fun item ->
         match item with
         | P.Synth (P.Two (Isa.CMP, Isa.Word, P.Abs (P.Lab s), _)) ->
           s = T.or_max_symbol
         | _ -> false)
      out
  in
  check_bool "compares against saved base" true reads_base

let test_dfa_static_fast_path_config () =
  let prog = parse "op:\n    mov &0x0140, r15\n    ret\n" in
  let fast = P.instr_count (Dfa.instrument prog) in
  let literal =
    P.instr_count
      (Dfa.instrument
         ~config:{ Dfa.static_fast_path = false; trust_frame_reads = true; selective = None }
         prog)
  in
  check_bool "literal Fig. 5 checks cost more" true (literal > fast)

let test_dfa_rejects_r4 () =
  expect_dfa_error "r4" (parse "op:\n    mov @r4, r5\n    ret\n")

let test_dfa_rejects_same_reg_load () =
  expect_dfa_error "mov @r15, r15" (parse "op:\n    mov @r15, r15\n    ret\n")

let test_dfa_rejects_read_feeding_jcc () =
  expect_dfa_error "logged read feeds jcc"
    (parse {|
    op:
        cmp &0x0140, r15
        jeq op
        ret
    |})

(* ------------------------------------------------------------- *)
(* Composition.                                                    *)

let test_composed_order () =
  (* Fig. 4: r4 entry check first, then F3's sp save, then args *)
  let out = T.instrument (Dfa.instrument (parse "op:\n    ret\n")) in
  let rec first_two items =
    match items with
    | (P.Synth i | P.Instr i) :: rest -> i :: first_two_tail rest
    | _ :: rest -> first_two rest
    | [] -> []
  and first_two_tail items =
    match first_two items with i :: _ -> [ i ] | [] -> []
  in
  (match first_two out with
   | [ P.Two (Isa.CMP, _, P.Imm (P.Lab s), P.Reg 4); _ ]
     when s = T.or_max_symbol -> ()
   | _ -> Alcotest.fail "entry check is not first after composition");
  (* and the sp log is present: mov sp, 0(r4) *)
  let has_sp_log =
    List.exists
      (fun item ->
         match item with
         | P.Synth (P.Two (Isa.MOV, Isa.Word, P.Reg 1, P.Indexed (P.Num 0, 4))) ->
           true
         | _ -> false)
      out
  in
  check_bool "F3 saves sp through r4" true has_sp_log

let test_composed_does_not_reinstrument () =
  (* Tiny-CFA must not store-check or CF-log the DFA's synthetic code *)
  let dfa_out = Dfa.instrument (parse "op:\n    mov &0x0140, r15\n    ret\n") in
  let cfa_sites_on_plain =
    T.count_logged_sites (T.instrument (parse "op:\n    mov &0x0140, r15\n    ret\n"))
  in
  let composed = T.instrument dfa_out in
  (* composed CF sites = same as instrumenting the original alone *)
  let cf_composed, input_composed = T.count_sites composed in
  check_int "no CF logging of synth code" cfa_sites_on_plain cf_composed;
  check_int "input sites survive composition"
    (Dfa.count_input_sites composed) input_composed

let suites =
  [ ("passes",
     [ Alcotest.test_case "cfa: log sites" `Quick test_cfa_log_sites;
       Alcotest.test_case "cfa: both arms" `Quick test_cfa_conditional_logs_both_arms;
       Alcotest.test_case "cfa: uncond config" `Quick test_cfa_no_uncond_config;
       Alcotest.test_case "cfa: store checks" `Quick test_cfa_store_checks_optional;
       Alcotest.test_case "cfa: rejects r4" `Quick test_cfa_rejects_r4;
       Alcotest.test_case "cfa: rejects reti" `Quick test_cfa_rejects_reti;
       Alcotest.test_case "cfa: rejects computed branch" `Quick test_cfa_rejects_computed_branch;
       Alcotest.test_case "cfa: rejects flag hazard" `Quick test_cfa_rejects_flag_hazard;
       Alcotest.test_case "cfa: abort loop" `Quick test_cfa_abort_loop_emitted;
       Alcotest.test_case "cfa: entry check first" `Quick test_cfa_entry_check_first;
       Alcotest.test_case "dfa: F3 nine entries" `Quick test_dfa_f3_always_logs_nine;
       Alcotest.test_case "dfa: static read" `Quick test_dfa_static_read_logged;
       Alcotest.test_case "dfa: stack reads skipped" `Quick test_dfa_stack_reads_skipped;
       Alcotest.test_case "dfa: frame trust config" `Quick test_dfa_frame_trust_config;
       Alcotest.test_case "dfa: dynamic read" `Quick test_dfa_dynamic_read_checked;
       Alcotest.test_case "dfa: fast path config" `Quick test_dfa_static_fast_path_config;
       Alcotest.test_case "dfa: rejects r4" `Quick test_dfa_rejects_r4;
       Alcotest.test_case "dfa: rejects same-reg load" `Quick test_dfa_rejects_same_reg_load;
       Alcotest.test_case "dfa: rejects hazard" `Quick test_dfa_rejects_read_feeding_jcc;
       Alcotest.test_case "composed: order" `Quick test_composed_order;
       Alcotest.test_case "composed: no re-instrumentation" `Quick test_composed_does_not_reinstrument ]) ]
