(* Verdict memoization: the verified-log cache must never change a
   verdict — only skip the replay that recomputes it.

   Three layers are exercised:
   - the Memo structure itself: entry and byte bounds, LRU recency,
     namespace isolation, and the waiters-are-hits rule shared with the
     plan LRU (concurrent lookups of one missing digest replay once,
     no double counting);
   - the key derivation: the canonical log digest covers exactly the
     replay's inputs (layout words + OR bytes), never the per-session
     challenge/token material, and the streaming wire-decode digest is
     bit-identical to the verifier's;
   - soundness end to end: a memo hit and a fresh replay agree on
     verdict, findings and step count across random programs, tampered
     logs and evictions mid-stream (QCheck), a forged token never
     launders a cached accept, and a replayed report with a stale
     challenge dies at the gateway's freshness gate before the memo is
     ever consulted. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module N = Dialed_net
module Apps = Dialed_apps.Apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------------------------------------------------------- *)
(* Memo structure: bounds, recency, namespaces, concurrency.          *)

let mk_entry ?(accepted = true) ?(findings = []) steps =
  { F.Memo.e_accepted = accepted; e_findings = findings; e_steps = steps }

let one_shard ~entries ~bytes =
  { F.Memo.max_entries = entries; max_bytes = bytes; shards = 1 }

let dg i = Printf.sprintf "digest-%02d" i

let lookup h i = F.Memo.find_or_replay h ~digest:(dg i) (fun () -> mk_entry i)

let test_entry_bound_lru () =
  let memo =
    F.Memo.create ~config:(one_shard ~entries:4 ~bytes:(1 lsl 30)) ()
  in
  let h = F.Memo.handle memo ~ns:"ns" in
  for i = 0 to 5 do
    let e, outcome = lookup h i in
    check_int (Printf.sprintf "entry %d is its own" i) i e.F.Memo.e_steps;
    check_bool "first sight is a miss" true (outcome = `Miss)
  done;
  let s = F.Memo.stats memo in
  check_int "resident capped" 4 s.F.Memo.entries;
  check_int "two evictions" 2 s.F.Memo.evictions;
  check_int "six misses" 6 s.F.Memo.misses;
  check_int "no hits yet" 0 s.F.Memo.hits;
  check_bool "freshest entry hits" true (snd (lookup h 5) = `Hit);
  check_bool "evicted entry misses" true (snd (lookup h 0) = `Miss)

let test_lru_recency () =
  let memo =
    F.Memo.create ~config:(one_shard ~entries:2 ~bytes:(1 lsl 30)) ()
  in
  let h = F.Memo.handle memo ~ns:"ns" in
  ignore (lookup h 0);
  ignore (lookup h 1);
  (* touching 0 makes 1 the LRU victim when 2 arrives *)
  check_bool "0 hits" true (snd (lookup h 0) = `Hit);
  ignore (lookup h 2);
  check_bool "0 survived" true (snd (lookup h 0) = `Hit);
  check_bool "1 was evicted" true (snd (lookup h 1) = `Miss)

let big_entry steps n =
  mk_entry ~accepted:false
    ~findings:[ C.Verifier.Replay_failed (String.make n 'x') ]
    steps

let test_byte_bound () =
  let memo =
    F.Memo.create ~config:(one_shard ~entries:1000 ~bytes:400) ()
  in
  let h = F.Memo.handle memo ~ns:"n" in
  (* two ~360-byte entries exceed 400 together: the older one goes *)
  ignore (F.Memo.find_or_replay h ~digest:"a" (fun () -> big_entry 1 200));
  ignore (F.Memo.find_or_replay h ~digest:"b" (fun () -> big_entry 2 200));
  let s = F.Memo.stats memo in
  check_int "one resident under byte pressure" 1 s.F.Memo.entries;
  check_int "one eviction" 1 s.F.Memo.evictions;
  check_bool "survivor is the newer" true
    (snd (F.Memo.find_or_replay h ~digest:"b" (fun () -> assert false))
     = `Hit);
  (* a single entry larger than the whole budget stays resident alone *)
  ignore (F.Memo.find_or_replay h ~digest:"huge" (fun () -> big_entry 3 600));
  let s = F.Memo.stats memo in
  check_int "oversize entry resident alone" 1 s.F.Memo.entries;
  check_bool "bytes overshoot is soft" true (s.F.Memo.bytes > 400);
  (* the next insert pushes the oversize one out again *)
  ignore (F.Memo.find_or_replay h ~digest:"small" (fun () -> mk_entry 4));
  check_bool "oversize evicted by the next arrival" true
    (snd (F.Memo.find_or_replay h ~digest:"huge" (fun () -> big_entry 5 600))
     = `Miss)

let test_namespace_isolation () =
  let memo = F.Memo.create () in
  let ha = F.Memo.handle memo ~ns:"plan-a" in
  let hb = F.Memo.handle memo ~ns:"plan-b" in
  let ea, oa = F.Memo.find_or_replay ha ~digest:"d" (fun () -> mk_entry 1) in
  let eb, ob = F.Memo.find_or_replay hb ~digest:"d" (fun () -> mk_entry 2) in
  check_bool "both namespaces miss" true (oa = `Miss && ob = `Miss);
  check_int "a keeps its entry" 1 ea.F.Memo.e_steps;
  check_int "b keeps its entry" 2 eb.F.Memo.e_steps;
  let ea', oa' = F.Memo.find_or_replay ha ~digest:"d" (fun () -> mk_entry 9) in
  check_bool "a hits its own" true (oa' = `Hit && ea'.F.Memo.e_steps = 1)

(* the plan-LRU rule, restated for memo entries: a lookup that arrives
   while a replay for the same digest is in flight waits and counts as a
   hit — exactly one miss per replay actually run, never two *)
let test_waiters_are_hits () =
  let memo = F.Memo.create ~config:(one_shard ~entries:8 ~bytes:(1 lsl 20)) () in
  let h = F.Memo.handle memo ~ns:"ns" in
  let started = Atomic.make false in
  let replays = Atomic.make 0 in
  let t =
    Thread.create
      (fun () ->
         ignore
           (F.Memo.find_or_replay h ~digest:"slow" (fun () ->
                Atomic.set started true;
                Thread.delay 0.1;
                Atomic.incr replays;
                mk_entry 7)))
      ()
  in
  while not (Atomic.get started) do Thread.yield () done;
  let e, outcome =
    F.Memo.find_or_replay h ~digest:"slow" (fun () ->
        Atomic.incr replays;
        mk_entry 999)
  in
  Thread.join t;
  check_bool "waiter took the hit path" true (outcome = `Hit);
  check_int "waiter got the builder's entry" 7 e.F.Memo.e_steps;
  check_int "exactly one replay ran" 1 (Atomic.get replays);
  let s = F.Memo.stats memo in
  check_int "one miss (the builder)" 1 s.F.Memo.misses;
  check_int "one hit (the waiter)" 1 s.F.Memo.hits;
  check_int "no double count" 2 (s.F.Memo.hits + s.F.Memo.misses)

let test_failed_replay_not_cached () =
  let memo = F.Memo.create ~config:(one_shard ~entries:8 ~bytes:(1 lsl 20)) () in
  let h = F.Memo.handle memo ~ns:"ns" in
  (match F.Memo.find_or_replay h ~digest:"d" (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "replay exception swallowed");
  let s = F.Memo.stats memo in
  check_int "failure counted as a miss" 1 s.F.Memo.misses;
  check_int "failure cached nothing" 0 s.F.Memo.entries;
  (* a waiter blocked on a failing replay retries as the new replayer *)
  let attempt = Atomic.make 0 in
  let barrier = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
         try
           ignore
             (F.Memo.find_or_replay h ~digest:"e" (fun () ->
                  Atomic.set barrier true;
                  Thread.delay 0.1;
                  Atomic.incr attempt;
                  failwith "first replay dies"))
         with Failure _ -> ())
      ()
  in
  while not (Atomic.get barrier) do Thread.yield () done;
  let e, outcome =
    F.Memo.find_or_replay h ~digest:"e" (fun () ->
        Atomic.incr attempt;
        mk_entry 42)
  in
  Thread.join t;
  check_bool "waiter became the new replayer" true (outcome = `Miss);
  check_int "both replays ran" 2 (Atomic.get attempt);
  check_int "second attempt's entry cached" 42 e.F.Memo.e_steps;
  let s = F.Memo.stats memo in
  check_int "three misses total, no phantom hits" 3 s.F.Memo.misses;
  check_int "no hits" 0 s.F.Memo.hits

let test_stats_shape () =
  check_bool "empty hit rate is 0" true
    (F.Memo.hit_rate
       { F.Memo.hits = 0; misses = 0; evictions = 0; entries = 0; bytes = 0 }
     = 0.0);
  let s =
    { F.Memo.hits = 3; misses = 1; evictions = 2; entries = 1; bytes = 128 }
  in
  check_bool "hit rate" true (abs_float (F.Memo.hit_rate s -. 0.75) < 1e-9);
  let json = F.Memo.stats_to_json s in
  List.iter
    (fun field ->
       check_bool (field ^ " in json") true
         (contains json ("\"" ^ field ^ "\"")))
    [ "hits"; "misses"; "evictions"; "entries"; "bytes"; "hit_rate" ]

(* ---------------------------------------------------------------- *)
(* Key derivation: what the digest covers, and what it must not.      *)

let fire_sensor = List.find (fun a -> a.Apps.name = "fire-sensor") Apps.all

let fs_built =
  lazy
    (let compiled =
       Dialed_minic.Minic.compile ~entry:fire_sensor.Apps.entry
         fire_sensor.Apps.source
     in
     C.Pipeline.build ~variant:C.Pipeline.Full
       ~data:compiled.Dialed_minic.Minic.data
       ~op:compiled.Dialed_minic.Minic.op
       ~or_min:fire_sensor.Apps.or_min ())

(* a fire-sensor attestation over a chosen ADC trace: distinct [shape]s
   read distinct samples, so their logs (and digests) differ *)
let fs_report ?(shape = 0) challenge =
  let device = C.Pipeline.device (Lazy.force fs_built) in
  let base = 520 + (3 * shape) in
  M.Peripherals.feed_adc (A.Device.board device)
    [ base; base + 2; base + 4; base + 2 ];
  ignore
    (A.Device.run_operation ~args:fire_sensor.Apps.benign_args device
     : A.Device.run_result);
  A.Device.attest device ~challenge

let test_wire_digest_pins_verifier_digest () =
  let r = fs_report "memo-wire" in
  let wire = A.Wire.encode r in
  match A.Wire.decode_digested wire with
  | Error e -> Alcotest.failf "decode_digested: %s" (A.Wire.error_to_string e)
  | Ok (r', d) ->
    check_bool "decoded report unchanged" true (r' = r);
    check_int "raw sha-256" 32 (String.length d);
    check_bool "streamed digest = verifier digest" true
      (d = C.Verifier.log_digest r);
    (match A.Wire.decode wire with
     | Ok r'' -> check_bool "decode agrees" true (r'' = r')
     | Error e ->
       Alcotest.failf "decode: %s" (A.Wire.error_to_string e))

let test_digest_covers_log_not_session () =
  (* same log under different challenges: token and challenge differ,
     digest must not — that equality is exactly what makes the repeat
     economy real (a fleet re-attests standing runs under ever-fresh
     challenges) *)
  let r1 = fs_report ~shape:0 "challenge-one" in
  let r2 = fs_report ~shape:0 "challenge-two" in
  check_bool "challenges differ" true
    (r1.A.Pox.challenge <> r2.A.Pox.challenge);
  check_bool "tokens differ" true (r1.A.Pox.token <> r2.A.Pox.token);
  check_bool "digests agree" true
    (C.Verifier.log_digest r1 = C.Verifier.log_digest r2);
  (* different sensor traces: different OR bytes, different digest *)
  let r3 = fs_report ~shape:1 "challenge-three" in
  check_bool "distinct logs get distinct digests" true
    (C.Verifier.log_digest r1 <> C.Verifier.log_digest r3);
  (* any OR byte flip moves the digest *)
  let flipped =
    let b = Bytes.of_string r1.A.Pox.or_data in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x80));
    { r1 with A.Pox.or_data = Bytes.to_string b }
  in
  check_bool "or_data flip moves the digest" true
    (C.Verifier.log_digest r1 <> C.Verifier.log_digest flipped)

let test_plan_namespace_separates_plans () =
  let built = Lazy.force fs_built in
  let p1 = C.Verifier.plan built in
  let p2 = C.Verifier.plan built in
  check_bool "same build, same knobs: shared namespace" true
    (C.Verifier.plan_memo_ns p1 = C.Verifier.plan_memo_ns p2);
  let p3 = C.Verifier.plan ~max_steps:999_999 built in
  check_bool "max_steps is part of the namespace" true
    (C.Verifier.plan_memo_ns p1 <> C.Verifier.plan_memo_ns p3);
  let policy =
    C.Verifier.{ policy_name = "never"; check = (fun _ -> Ok ()) }
  in
  let p4 = C.Verifier.plan ~policies:[ policy ] built in
  let p5 = C.Verifier.plan ~policies:[ policy ] built in
  check_bool "plans with policies never share a namespace" true
    (C.Verifier.plan_memo_ns p4 <> C.Verifier.plan_memo_ns p5)

(* ---------------------------------------------------------------- *)
(* Fleet integration: counters, equivalence, negative caching.        *)

let same_verdicts (a : F.Fleet.summary) (b : F.Fleet.summary) =
  List.length a.F.Fleet.verdicts = List.length b.F.Fleet.verdicts
  && List.for_all2
       (fun (x : F.Fleet.verdict) (y : F.Fleet.verdict) ->
          x.F.Fleet.device_id = y.F.Fleet.device_id
          && x.F.Fleet.accepted = y.F.Fleet.accepted
          && x.F.Fleet.findings = y.F.Fleet.findings
          && x.F.Fleet.replay_steps = y.F.Fleet.replay_steps)
       a.F.Fleet.verdicts b.F.Fleet.verdicts

let flip_or_byte ~at (report : A.Pox.report) =
  let or_data = Bytes.of_string report.A.Pox.or_data in
  let at = (at + Bytes.length or_data) mod Bytes.length or_data in
  Bytes.set or_data at
    (Char.chr (Char.code (Bytes.get or_data at) lxor 0xFF));
  { report with A.Pox.or_data = Bytes.to_string or_data }

let vuln_built = lazy (Apps.build Apps.syringe_pump_vuln)

(* the mixed fleet from test_fleet, shaped for the memo: two repeating
   log shapes (benign / attacked — one replay each, the rest hits,
   including the negatively-cached attack rejections) plus forged-token
   reports that must die in precheck without ever touching the memo *)
let mixed_batch built n =
  List.init n (fun i ->
      let device = C.Pipeline.device built in
      let args =
        if i mod 4 = 2 then Apps.attack_args_syringe_vuln
        else Apps.syringe_pump_vuln.Apps.benign_args
      in
      ignore (A.Device.run_operation ~args device : A.Device.run_result);
      let report =
        A.Device.attest device ~challenge:(Printf.sprintf "memo-%03d" i)
      in
      let report =
        if i mod 4 = 3 then flip_or_byte ~at:(-24) report else report
      in
      (Printf.sprintf "dev-%03d" i, report))

let test_batch_counters_and_equivalence () =
  let built = Lazy.force vuln_built in
  let batch = mixed_batch built 16 in
  let plan = F.Plan.of_built built in
  let off = F.Fleet.verify_batch ~domains:2 plan batch in
  let memo = F.Memo.create () in
  let on = F.Fleet.verify_batch ~domains:2 ~memo plan batch in
  check_bool "memo-on = memo-off, verdict for verdict" true
    (same_verdicts off on);
  let m = on.F.Fleet.metrics in
  (* 8 benign + 4 attacked reach the memo (two distinct digests); the 4
     forged-token reports are precheck rejections and never look up *)
  check_int "two replays ran" 2 m.F.Metrics.memo_misses;
  check_int "ten hits (negative results included)" 10 m.F.Metrics.memo_hits;
  check_int "memo-off counters stay zero" 0
    (off.F.Fleet.metrics.F.Metrics.memo_hits
     + off.F.Fleet.metrics.F.Metrics.memo_misses);
  check_bool "attack rejections negatively cached" true
    (List.mem_assoc "oob-access" m.F.Metrics.rejects_by_kind);
  check_bool "counters in metrics json" true
    (contains (F.Metrics.to_json m) "\"memo_hits\":10");
  (* the memo outlives the batch: a second pass is all hits *)
  let again = F.Fleet.verify_batch ~domains:2 ~memo plan batch in
  check_bool "second pass equal too" true (same_verdicts off again);
  check_int "second pass: no replays" 0
    again.F.Fleet.metrics.F.Metrics.memo_misses;
  check_int "second pass: all lookups hit" 12
    again.F.Fleet.metrics.F.Metrics.memo_hits

let test_forged_token_never_launders_cached_accept () =
  let built = Lazy.force vuln_built in
  let device = C.Pipeline.device built in
  ignore
    (A.Device.run_operation ~args:Apps.syringe_pump_vuln.Apps.benign_args
       device
     : A.Device.run_result);
  let report = A.Device.attest device ~challenge:"memo-launder" in
  let plan = F.Plan.of_built built in
  let memo = F.Memo.create () in
  (* prime the memo with the accept for this exact log digest *)
  let primed = F.Fleet.verify_batch ~memo plan [ ("honest", report) ] in
  check_bool "honest report accepted" true
    (List.for_all (fun (v : F.Fleet.verdict) -> v.F.Fleet.accepted)
       primed.F.Fleet.verdicts);
  check_int "accept is cached" 1 primed.F.Fleet.metrics.F.Metrics.memo_misses;
  (* same log bytes, corrupted token: precheck must reject before the
     memo is consulted — the cached accept is unreachable *)
  let forged =
    let t = Bytes.of_string report.A.Pox.token in
    Bytes.set t 5 (Char.chr (Char.code (Bytes.get t 5) lxor 0x01));
    { report with A.Pox.token = Bytes.to_string t }
  in
  let s = F.Fleet.verify_batch ~memo plan [ ("forger", forged) ] in
  (match s.F.Fleet.verdicts with
   | [ v ] ->
     check_bool "forged token rejected" false v.F.Fleet.accepted;
     check_bool "rejected as bad-token" true
       (List.exists
          (fun f ->
             match f with C.Verifier.Bad_token _ -> true | _ -> false)
          v.F.Fleet.findings)
   | _ -> Alcotest.fail "one verdict expected");
  check_int "memo never consulted for the forgery" 0
    (s.F.Fleet.metrics.F.Metrics.memo_hits
     + s.F.Fleet.metrics.F.Metrics.memo_misses)

let test_stream_snapshot_and_digest_param () =
  let built = Lazy.force vuln_built in
  let plan = F.Plan.of_built built in
  let memo = F.Memo.create () in
  let st = F.Fleet.stream ~domains:1 ~memo plan in
  let batch = mixed_batch built 8 in
  List.iter
    (fun (id, r) ->
       (* feed the precomputed digest for every other report: the wire
          path (decode_digested) and the self-computed path must mix *)
       match A.Wire.decode_digested (A.Wire.encode r) with
       | Ok (r', d) when String.length id mod 2 = 0 ->
         F.Fleet.stream_submit ~digest:d st id r'
       | _ -> F.Fleet.stream_submit st id r)
    batch;
  (* drain, then snapshot: in-flight work has landed, counters final *)
  let rec drain () =
    if F.Fleet.stream_pending st > 0 then begin
      ignore (F.Fleet.stream_poll st : F.Fleet.verdict list);
      Thread.yield ();
      drain ()
    end
  in
  drain ();
  let live = F.Fleet.stream_snapshot st in
  (* 4 benign + 2 attacked consult the memo; 2 forged die in precheck *)
  check_int "snapshot misses" 2 live.F.Metrics.memo_misses;
  check_int "snapshot hits" 4 live.F.Metrics.memo_hits;
  let summary = F.Fleet.stream_close st in
  check_int "close agrees with snapshot" 2
    summary.F.Fleet.metrics.F.Metrics.memo_misses;
  check_int "close hits" 4 summary.F.Fleet.metrics.F.Metrics.memo_hits;
  (* and the whole run matches a memo-off batch *)
  let off = F.Fleet.verify_batch plan batch in
  check_bool "stream verdicts = memo-off" true (same_verdicts off summary)

let test_evictions_mid_stream_keep_verdicts () =
  let built = Lazy.force vuln_built in
  let plan = F.Plan.of_built built in
  (* four distinct shapes cycled through a one-entry memo: every lookup
     evicts the previous entry, and the verdicts must not care *)
  let shapes = mixed_batch built 4 in
  let batch =
    List.concat_map
      (fun round ->
         List.mapi
           (fun i (_, r) -> (Printf.sprintf "ev-%d-%d" round i, r))
           shapes)
      [ 0; 1; 2 ]
  in
  let off = F.Fleet.verify_batch plan batch in
  let memo = F.Memo.create ~config:(one_shard ~entries:1 ~bytes:(1 lsl 20)) () in
  let on = F.Fleet.verify_stream ~domains:1 ~memo plan batch in
  check_bool "thrashing memo still agrees" true (same_verdicts off on);
  let s = F.Memo.stats memo in
  check_bool "evictions actually happened" true (s.F.Memo.evictions > 0);
  check_int "one entry resident" 1 s.F.Memo.entries

(* ---------------------------------------------------------------- *)
(* QCheck: memo hit = fresh replay, across random programs, strong-
   attacker tampering (consistent token over a doctored log — the
   memoizable rejection kind) and forced evictions mid-batch.         *)

let prop_memo_equals_fresh =
  QCheck.Test.make
    ~name:"memo-on = memo-off across random programs and tampering"
    ~count:10
    QCheck.(
      triple Test_randprog.arb_program
        (pair (int_range (-40) 40) (int_range (-40) 40))
        (int_range 1 10_000))
    (fun (stmts, (a0, a1), tamper_seed) ->
       let source = Test_randprog.program_source stmts in
       let compiled = Dialed_minic.Minic.compile source in
       let built =
         C.Pipeline.build ~variant:C.Pipeline.Full
           ~data:compiled.Dialed_minic.Minic.data
           ~op:compiled.Dialed_minic.Minic.op ~or_min:0x0280 ()
       in
       let attest args challenge =
         let device = C.Pipeline.device built in
         ignore (A.Device.run_operation ~args device : A.Device.run_result);
         A.Device.attest device ~challenge
       in
       let r1 = attest [ a0; a1 ] "memo-q1" in
       let r2 = attest [ a1; a0 ] "memo-q2" in
       QCheck.assume (String.length r1.A.Pox.or_data > 0);
       (* strong attacker: doctor the log, re-MAC with the device key —
          the rejection (if any) is replay-stage, i.e. exactly the kind
          the memo is allowed to cache *)
       let tampered =
         let b = Bytes.of_string r1.A.Pox.or_data in
         let off = tamper_seed mod Bytes.length b in
         Bytes.set b off
           (Char.chr
              (Char.code (Bytes.get b off) lxor (1 lsl (tamper_seed mod 8))));
         Test_adversarial.forge_token built
           { r1 with A.Pox.or_data = Bytes.to_string b }
       in
       let batch =
         [ ("q-0", r1); ("q-1", r2); ("q-2", tampered); ("q-3", r1);
           ("q-4", tampered); ("q-5", r2) ]
       in
       let plan = F.Plan.of_built built in
       let off = F.Fleet.verify_batch plan batch in
       (* a one-entry memo: the three digests thrash it, so repeats mix
          genuine hits with evict-and-replay misses *)
       let tiny =
         F.Memo.create ~config:(one_shard ~entries:1 ~bytes:(1 lsl 20)) ()
       in
       let on_tiny = F.Fleet.verify_batch ~memo:tiny plan batch in
       (* and a roomy one through the streaming path: repeats are hits *)
       let roomy = F.Memo.create () in
       let on_roomy = F.Fleet.verify_stream ~domains:2 ~memo:roomy plan batch in
       if not (same_verdicts off on_tiny) then
         QCheck.Test.fail_reportf
           "thrashing memo diverged from fresh replay on:\n%s" source;
       if not (same_verdicts off on_roomy) then
         QCheck.Test.fail_reportf
           "roomy memo diverged from fresh replay on:\n%s" source;
       true)

(* ---------------------------------------------------------------- *)
(* Gateway: memo + plan-cache counters in stats, stale-challenge
   replays dead at the freshness gate, swarm repeat knob.             *)

let make_device () =
  let d = C.Pipeline.device (Lazy.force fs_built) in
  fire_sensor.Apps.setup d;
  d

let client_config =
  { N.Client.default_config with
    N.Client.read_deadline = Some 5.0; backoff_base = 0.01;
    backoff_cap = 0.05 }

let with_memo_gateway f =
  let pcache = F.Plan.cache () in
  let plan = F.Plan.find_or_build pcache (Lazy.force fs_built) in
  let config =
    { N.Server.default_config with
      N.Server.domains = 1; window = 4; read_deadline = Some 5.0;
      max_conns = 64; args = fire_sensor.Apps.benign_args;
      memo = Some F.Memo.default_config; plan_cache = Some pcache }
  in
  let listener, dial = N.Transport.loopback_listener () in
  let server = N.Server.create ~config ~plan listener in
  N.Server.start server;
  Fun.protect
    ~finally:(fun () -> ignore (N.Server.stop server : N.Server.stats))
    (fun () -> f ~server ~dial)

let test_gateway_memo_and_plan_cache_stats () =
  with_memo_gateway (fun ~server ~dial ->
      let conn = dial () in
      let rounds =
        N.Client.attest_rounds ~config:client_config ~device:make_device
          ~device_id:"dev-memo" ~rounds:4 conn
      in
      N.Transport.close conn;
      check_int "four rounds" 4 (List.length rounds);
      List.iter
        (fun (r : N.Client.round) ->
           check_bool "round accepted" true r.N.Client.accepted)
        rounds;
      let stats = N.Server.stats server in
      (match stats.N.Server.memo with
       | None -> Alcotest.fail "memo armed but stats carry none"
       | Some ms ->
         check_int "one replay for four identical logs" 1 ms.F.Memo.misses;
         check_int "three hits" 3 ms.F.Memo.hits;
         check_int "one entry resident" 1 ms.F.Memo.entries);
      (* the stream snapshot carries the same counters *)
      check_int "verify metrics agree (hits)" 3
        stats.N.Server.verify.F.Metrics.memo_hits;
      check_int "verify metrics agree (misses)" 1
        stats.N.Server.verify.F.Metrics.memo_misses;
      (match stats.N.Server.plan_cache with
       | None -> Alcotest.fail "plan cache handed over but stats carry none"
       | Some c ->
         check_int "one plan resident" 1 c.F.Plan.cc_resident;
         check_int "one plan build" 1 c.F.Plan.cc_misses);
      let json = N.Server.stats_to_json stats in
      check_bool "memo counters in stats json" true
        (contains json "\"memo\": {\"hits\":3,\"misses\":1");
      check_bool "plan-cache counters in stats json" true
        (contains json "\"plan_cache\": {\"hits\":0,\"misses\":1"))

let test_gateway_stale_replay_rejected_despite_cache () =
  with_memo_gateway (fun ~server ~dial ->
      let conn = dial () in
      let captured = ref None in
      (* round 1 is honest (and seeds the memo with this log's accept);
         every later round replays round 1's exact report — a stale,
         already-consumed challenge carrying a perfectly valid token
         over a digest the memo has cached as accepted *)
      let mangle r =
        match !captured with
        | None -> captured := Some r; r
        | Some stale -> stale
      in
      let config =
        { client_config with N.Client.attempts = 1; mangle = Some mangle }
      in
      let rounds =
        N.Client.attest_rounds ~config ~device:make_device
          ~device_id:"dev-replayer" ~rounds:3 conn
      in
      N.Transport.close conn;
      (match rounds with
       | [ r1; r2; r3 ] ->
         check_bool "honest round accepted" true r1.N.Client.accepted;
         List.iter
           (fun (r : N.Client.round) ->
              check_bool "stale replay rejected" false r.N.Client.accepted;
              check_bool "rejected for freshness, not replayed verdict" true
                (List.exists (fun (k, _) -> k = "bad-token") r.N.Client.findings))
           [ r2; r3 ]
       | _ -> Alcotest.fail "three rounds expected");
      (* the stale replays died at the gate: the memo saw exactly one
         lookup (round 1's miss), its cached accept was never consulted *)
      let stats = N.Server.stats server in
      match stats.N.Server.memo with
      | None -> Alcotest.fail "memo stats missing"
      | Some ms ->
        check_int "one miss (the honest round)" 1 ms.F.Memo.misses;
        check_int "stale replays never reached the memo" 0 ms.F.Memo.hits)

let test_swarm_repeat_knob_feeds_memo () =
  with_memo_gateway (fun ~server ~dial ->
      let distinct = 3 in
      let config =
        { N.Swarm.default_config with
          N.Swarm.clients = 9; rounds = 2; window = 2; concurrency = 3;
          distinct_logs = distinct; client = client_config }
      in
      (* a shape-respecting responder: provers folded onto one shape
         feed identical ADC traces, so their logs collide by design *)
      let respond ~client:_ ~shape =
        N.Swarm.cheap_responder
          ~build:(fun () ->
              let d = C.Pipeline.device (Lazy.force fs_built) in
              let base = 520 + (3 * shape) in
              M.Peripherals.feed_adc (A.Device.board d)
                [ base; base + 2; base + 4; base + 2 ];
              d)
          ()
      in
      let outcome = N.Swarm.run ~config ~dial ~respond () in
      check_int "no prover failed" 0 outcome.N.Swarm.clients_failed;
      check_int "all rounds accepted" 18 outcome.N.Swarm.rounds_accepted;
      let stats = N.Server.stats server in
      match stats.N.Server.memo with
      | None -> Alcotest.fail "memo stats missing"
      | Some ms ->
        check_int "one replay per distinct shape" distinct ms.F.Memo.misses;
        check_int "every repeat was a hit" (18 - distinct) ms.F.Memo.hits)

let suites =
  [ ("memo",
     [ Alcotest.test_case "entry bound + LRU" `Quick test_entry_bound_lru;
       Alcotest.test_case "LRU recency" `Quick test_lru_recency;
       Alcotest.test_case "byte bound" `Quick test_byte_bound;
       Alcotest.test_case "namespace isolation" `Quick
         test_namespace_isolation;
       Alcotest.test_case "waiters are hits" `Quick test_waiters_are_hits;
       Alcotest.test_case "failed replay not cached" `Quick
         test_failed_replay_not_cached;
       Alcotest.test_case "stats shape" `Quick test_stats_shape ]);
    ("memo-key",
     [ Alcotest.test_case "wire digest pins verifier digest" `Quick
         test_wire_digest_pins_verifier_digest;
       Alcotest.test_case "digest covers log, not session" `Quick
         test_digest_covers_log_not_session;
       Alcotest.test_case "plan namespace separation" `Quick
         test_plan_namespace_separates_plans ]);
    ("memo-fleet",
     [ Alcotest.test_case "batch counters + equivalence" `Quick
         test_batch_counters_and_equivalence;
       Alcotest.test_case "forged token never launders a cached accept"
         `Quick test_forged_token_never_launders_cached_accept;
       Alcotest.test_case "stream snapshot + wire digests" `Quick
         test_stream_snapshot_and_digest_param;
       Alcotest.test_case "evictions mid-stream keep verdicts" `Quick
         test_evictions_mid_stream_keep_verdicts;
       QCheck_alcotest.to_alcotest prop_memo_equals_fresh ]);
    ("memo-gateway",
     [ Alcotest.test_case "memo + plan-cache counters in stats" `Quick
         test_gateway_memo_and_plan_cache_stats;
       Alcotest.test_case "stale replay rejected despite cached accept"
         `Quick test_gateway_stale_replay_rejected_despite_cache;
       Alcotest.test_case "swarm repeat knob feeds the memo" `Quick
         test_swarm_repeat_knob_feeds_memo ]) ]
