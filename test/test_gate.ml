(* Challenge-gate freshness: a report accepted once must never be
   accepted again — not within its session, and not by a fresh session
   created from the same deterministic seed (the cross-session replay
   that purely counter-derived challenges would allow). *)

module A = Dialed_apex
module C = Dialed_core
module Minic = Dialed_minic.Minic

let check_bool = Alcotest.(check bool)

let build () =
  let compiled = Minic.compile "int main(int a) { return a + 1; }" in
  C.Pipeline.build ~data:compiled.Minic.data ~op:compiled.Minic.op ()

let honest_report built req =
  let device = C.Pipeline.device built in
  fst (C.Protocol.prover_execute device req)

let test_gate_consumes_challenge () =
  let built = build () in
  let gate = C.Protocol.make_gate () in
  let req = C.Protocol.gate_request gate ~args:[ 4 ] in
  let report = honest_report built req in
  (match C.Protocol.gate_check gate req report with
   | Ok () -> ()
   | Error e -> Alcotest.failf "fresh report rejected: %s" e);
  (match C.Protocol.gate_check gate req report with
   | Ok () -> Alcotest.fail "replayed report accepted"
   | Error _ -> ());
  (* the stale report cannot satisfy the next challenge either *)
  let req2 = C.Protocol.gate_request gate ~args:[ 4 ] in
  match C.Protocol.gate_check gate req2 report with
  | Ok () -> Alcotest.fail "stale report accepted for a new challenge"
  | Error _ -> ()

let test_gate_instances_never_repeat_challenges () =
  (* two gates from the same seed (a verifier restart) must not issue
     the same challenge — otherwise recorded reports replay *)
  let g1 = C.Protocol.make_gate ~seed:"same-seed" () in
  let g2 = C.Protocol.make_gate ~seed:"same-seed" () in
  let r1 = C.Protocol.gate_request g1 ~args:[] in
  let r2 = C.Protocol.gate_request g2 ~args:[] in
  check_bool "distinct challenges across gate instances" true
    (r1.C.Protocol.challenge <> r2.C.Protocol.challenge)

let test_session_rejects_same_session_replay () =
  let built = build () in
  let session = C.Protocol.make_session (C.Verifier.create built) in
  let req1 = C.Protocol.next_request session ~args:[ 4 ] in
  let report1 = honest_report built req1 in
  let first = C.Protocol.check_response session req1 report1 in
  check_bool "first presentation accepted" true first.C.Verifier.accepted;
  let second = C.Protocol.check_response session req1 report1 in
  check_bool "second presentation rejected" true
    (not second.C.Verifier.accepted);
  let req2 = C.Protocol.next_request session ~args:[ 4 ] in
  let cross = C.Protocol.check_response session req2 report1 in
  check_bool "old report rejected for new challenge" true
    (not cross.C.Verifier.accepted)

let test_session_rejects_cross_session_replay () =
  let built = build () in
  let seed = "restart-seed" in
  let s1 = C.Protocol.make_session ~seed (C.Verifier.create built) in
  let req1 = C.Protocol.next_request s1 ~args:[ 4 ] in
  let report1 = honest_report built req1 in
  let first = C.Protocol.check_response s1 req1 report1 in
  check_bool "first session accepts" true first.C.Verifier.accepted;
  (* attacker records report1; the verifier restarts with the same
     deterministic seed — the recorded report must not satisfy it *)
  let s2 = C.Protocol.make_session ~seed (C.Verifier.create built) in
  let req2 = C.Protocol.next_request s2 ~args:[ 4 ] in
  let replay = C.Protocol.check_response s2 req2 report1 in
  check_bool "cross-session replay rejected" true
    (not replay.C.Verifier.accepted);
  (* the fresh session still serves honest provers *)
  let req3 = C.Protocol.next_request s2 ~args:[ 4 ] in
  let report3 = honest_report built req3 in
  let honest = C.Protocol.check_response s2 req3 report3 in
  check_bool "fresh session accepts honest report" true
    honest.C.Verifier.accepted

let suites =
  [ ("protocol-gate",
     [ Alcotest.test_case "challenge consumed on accept" `Quick
         test_gate_consumes_challenge;
       Alcotest.test_case "gate instances never repeat" `Quick
         test_gate_instances_never_repeat_challenges;
       Alcotest.test_case "same-session replay rejected" `Quick
         test_session_rejects_same_session_replay;
       Alcotest.test_case "cross-session replay rejected" `Quick
         test_session_rejects_cross_session_replay ]) ]
