(* Challenge-gate freshness: a report accepted once must never be
   accepted again — not within its session, and not by a fresh session
   created from the same deterministic seed (the cross-session replay
   that purely counter-derived challenges would allow). *)

module A = Dialed_apex
module C = Dialed_core
module Minic = Dialed_minic.Minic

let check_bool = Alcotest.(check bool)

let build () =
  let compiled = Minic.compile "int main(int a) { return a + 1; }" in
  C.Pipeline.build ~data:compiled.Minic.data ~op:compiled.Minic.op ()

let honest_report built req =
  let device = C.Pipeline.device built in
  fst (C.Protocol.prover_execute device req)

let test_gate_consumes_challenge () =
  let built = build () in
  let gate = C.Protocol.make_gate () in
  let req = C.Protocol.gate_request gate ~args:[ 4 ] in
  let report = honest_report built req in
  (match C.Protocol.gate_check gate req report with
   | Ok () -> ()
   | Error e -> Alcotest.failf "fresh report rejected: %s" e);
  (match C.Protocol.gate_check gate req report with
   | Ok () -> Alcotest.fail "replayed report accepted"
   | Error _ -> ());
  (* the stale report cannot satisfy the next challenge either *)
  let req2 = C.Protocol.gate_request gate ~args:[ 4 ] in
  match C.Protocol.gate_check gate req2 report with
  | Ok () -> Alcotest.fail "stale report accepted for a new challenge"
  | Error _ -> ()

let test_gate_instances_never_repeat_challenges () =
  (* two gates from the same seed (a verifier restart) must not issue
     the same challenge — otherwise recorded reports replay *)
  let g1 = C.Protocol.make_gate ~seed:"same-seed" () in
  let g2 = C.Protocol.make_gate ~seed:"same-seed" () in
  let r1 = C.Protocol.gate_request g1 ~args:[] in
  let r2 = C.Protocol.gate_request g2 ~args:[] in
  check_bool "distinct challenges across gate instances" true
    (r1.C.Protocol.challenge <> r2.C.Protocol.challenge)

let test_session_rejects_same_session_replay () =
  let built = build () in
  let session = C.Protocol.make_session (C.Verifier.create built) in
  let req1 = C.Protocol.next_request session ~args:[ 4 ] in
  let report1 = honest_report built req1 in
  let first = C.Protocol.check_response session req1 report1 in
  check_bool "first presentation accepted" true first.C.Verifier.accepted;
  let second = C.Protocol.check_response session req1 report1 in
  check_bool "second presentation rejected" true
    (not second.C.Verifier.accepted);
  let req2 = C.Protocol.next_request session ~args:[ 4 ] in
  let cross = C.Protocol.check_response session req2 report1 in
  check_bool "old report rejected for new challenge" true
    (not cross.C.Verifier.accepted)

let test_session_rejects_cross_session_replay () =
  let built = build () in
  let seed = "restart-seed" in
  let s1 = C.Protocol.make_session ~seed (C.Verifier.create built) in
  let req1 = C.Protocol.next_request s1 ~args:[ 4 ] in
  let report1 = honest_report built req1 in
  let first = C.Protocol.check_response s1 req1 report1 in
  check_bool "first session accepts" true first.C.Verifier.accepted;
  (* attacker records report1; the verifier restarts with the same
     deterministic seed — the recorded report must not satisfy it *)
  let s2 = C.Protocol.make_session ~seed (C.Verifier.create built) in
  let req2 = C.Protocol.next_request s2 ~args:[ 4 ] in
  let replay = C.Protocol.check_response s2 req2 report1 in
  check_bool "cross-session replay rejected" true
    (not replay.C.Verifier.accepted);
  (* the fresh session still serves honest provers *)
  let req3 = C.Protocol.next_request s2 ~args:[ 4 ] in
  let report3 = honest_report built req3 in
  let honest = C.Protocol.check_response s2 req3 report3 in
  check_bool "fresh session accepts honest report" true
    honest.C.Verifier.accepted

(* --------------------------------------------------------------- *)
(* Windowed gates: several challenges pending at once, redeemed in
   any order, sharing one derivation counter and used-set with the
   single-shot API.                                                  *)

let check_int = Alcotest.(check int)

let test_gate_window_out_of_order_redeem () =
  let built = build () in
  let gate = C.Protocol.make_gate () in
  let reqs = List.init 5 (fun _ -> C.Protocol.gate_issue gate ~args:[ 4 ]) in
  check_int "five pending" 5 (C.Protocol.gate_outstanding gate);
  (* redeem 3, 0, 4, 1, 2: order must not matter *)
  let order = [ 3; 0; 4; 1; 2 ] in
  List.iter
    (fun i ->
       let req = List.nth reqs i in
       let report = honest_report built req in
       match C.Protocol.gate_redeem gate req report with
       | Ok () -> ()
       | Error e -> Alcotest.failf "redeem %d rejected: %s" i e)
    order;
  check_int "none pending" 0 (C.Protocol.gate_outstanding gate)

let test_gate_window_rejects_replay_and_unissued () =
  let built = build () in
  let gate = C.Protocol.make_gate () in
  let req = C.Protocol.gate_issue gate ~args:[ 4 ] in
  let report = honest_report built req in
  (match C.Protocol.gate_redeem gate req report with
   | Ok () -> ()
   | Error e -> Alcotest.failf "fresh redeem rejected: %s" e);
  (* same challenge again: consumed *)
  (match C.Protocol.gate_redeem gate req report with
   | Ok () -> Alcotest.fail "double redeem accepted"
   | Error _ -> ());
  (* a challenge this gate never issued *)
  let forged = { req with C.Protocol.challenge = String.make 32 'f' } in
  (match C.Protocol.gate_redeem gate forged report with
   | Ok () -> Alcotest.fail "unissued challenge accepted"
   | Error e ->
     check_bool "says never issued" true
       (e = "challenge was never issued"));
  (* an old report presented against a live pending challenge: the
     pending challenge must survive for its real answer *)
  let req2 = C.Protocol.gate_issue gate ~args:[ 4 ] in
  (match C.Protocol.gate_redeem gate req2 report with
   | Ok () -> Alcotest.fail "stale report accepted for live challenge"
   | Error _ -> ());
  check_int "live challenge still pending" 1
    (C.Protocol.gate_outstanding gate);
  let report2 = honest_report built req2 in
  match C.Protocol.gate_redeem gate req2 report2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest answer rejected after replay: %s" e

let test_gate_mixed_apis_share_counter () =
  (* interleaving gate_request and gate_issue on one gate must never
     produce the same challenge twice *)
  let gate = C.Protocol.make_gate () in
  let seen = Hashtbl.create 16 in
  for i = 0 to 19 do
    let req =
      if i mod 2 = 0 then C.Protocol.gate_issue gate ~args:[]
      else C.Protocol.gate_request gate ~args:[]
    in
    check_bool "challenge is fresh" true
      (not (Hashtbl.mem seen req.C.Protocol.challenge));
    Hashtbl.replace seen req.C.Protocol.challenge ()
  done

let suites =
  [ ("protocol-gate",
     [ Alcotest.test_case "challenge consumed on accept" `Quick
         test_gate_consumes_challenge;
       Alcotest.test_case "gate instances never repeat" `Quick
         test_gate_instances_never_repeat_challenges;
       Alcotest.test_case "same-session replay rejected" `Quick
         test_session_rejects_same_session_replay;
       Alcotest.test_case "cross-session replay rejected" `Quick
         test_session_rejects_cross_session_replay;
       Alcotest.test_case "windowed out-of-order redeem" `Quick
         test_gate_window_out_of_order_redeem;
       Alcotest.test_case "windowed replay/unissued rejected" `Quick
         test_gate_window_rejects_replay_and_unissued;
       Alcotest.test_case "mixed APIs share counter" `Quick
         test_gate_mixed_apis_share_counter ]) ]
