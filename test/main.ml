let () =
  Alcotest.run "dialed"
    (Test_word.suites @ Test_encdec.suites @ Test_crypto.suites @ Test_memory.suites
     @ Test_cpu.suites @ Test_asm.suites @ Test_periph.suites @ Test_apex.suites @ Test_dialed_e2e.suites @ Test_minic.suites @ Test_apps.suites @ Test_cfa_verifier.suites @ Test_cfg.suites @ Test_passes.suites @ Test_oplog_pipeline.suites @ Test_extras.suites @ Test_randprog.suites @ Test_wire_sugar.suites @ Test_trace.suites @ Test_swatt.suites @ Test_fuzz.suites @ Test_monitor.suites @ Test_fleet.suites
     @ Test_adversarial.suites @ Test_replay_equiv.suites
     @ Test_staticcheck.suites @ Test_gate.suites
     @ Test_evloop.suites @ Test_net.suites
     @ Test_swarm.suites
     @ Test_memo.suites
     @ Test_lifecycle.suites
     @ Test_cli.suites)
