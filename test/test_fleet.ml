(* Fleet batch verification: determinism across domain counts, plan
   sharing/caching, and metrics aggregation over a mixed benign/attacked
   batch built from the bundled applications. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module F = Dialed_fleet
module Apps = Dialed_apps.Apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flip_or_byte ~at (report : A.Pox.report) =
  let or_data = Bytes.of_string report.A.Pox.or_data in
  let at = (at + Bytes.length or_data) mod Bytes.length or_data in
  Bytes.set or_data at
    (Char.chr (Char.code (Bytes.get or_data at) lxor 0xFF));
  { report with A.Pox.or_data = Bytes.to_string or_data }

(* A mixed batch over the vulnerable pump firmware:
   - i mod 4 = 0,1  -> benign runs (accepted)
   - i mod 4 = 2    -> the Fig. 2 data-only attack (oob-access)
   - i mod 4 = 3    -> benign run with a forged log byte (bad-token) *)
let mixed_batch built n =
  List.init n (fun i ->
      let device = C.Pipeline.device built in
      let args =
        if i mod 4 = 2 then Apps.attack_args_syringe_vuln
        else Apps.syringe_pump_vuln.Apps.benign_args
      in
      ignore (A.Device.run_operation ~args device);
      let report =
        A.Device.attest device ~challenge:(Printf.sprintf "batch-%03d" i)
      in
      let report =
        if i mod 4 = 3 then flip_or_byte ~at:(-24) report else report
      in
      (Printf.sprintf "dev-%03d" i, report))

let vuln_built = lazy (Apps.build Apps.syringe_pump_vuln)

let test_determinism_across_domains () =
  let built = Lazy.force vuln_built in
  let batch = mixed_batch built 16 in
  let plan = F.Plan.of_built built in
  let serial = F.Fleet.verify_batch ~domains:1 plan batch in
  let parallel = F.Fleet.verify_batch ~domains:4 ~chunk:3 plan batch in
  check_int "verdict count (serial)" 16
    (List.length serial.F.Fleet.verdicts);
  List.iter2
    (fun (a : F.Fleet.verdict) (b : F.Fleet.verdict) ->
       Alcotest.(check string) "device order preserved" a.F.Fleet.device_id
         b.F.Fleet.device_id;
       check_bool
         (Printf.sprintf "%s: same verdict" a.F.Fleet.device_id)
         a.F.Fleet.accepted b.F.Fleet.accepted;
       check_bool
         (Printf.sprintf "%s: same findings" a.F.Fleet.device_id)
         true (a.F.Fleet.findings = b.F.Fleet.findings);
       check_int
         (Printf.sprintf "%s: same replay length" a.F.Fleet.device_id)
         a.F.Fleet.replay_steps b.F.Fleet.replay_steps)
    serial.F.Fleet.verdicts parallel.F.Fleet.verdicts

let test_mixed_batch_verdicts () =
  let built = Lazy.force vuln_built in
  let batch = mixed_batch built 16 in
  let plan = F.Plan.of_built built in
  let summary = F.Fleet.verify_batch ~domains:2 plan batch in
  List.iteri
    (fun i (v : F.Fleet.verdict) ->
       match i mod 4 with
       | 0 | 1 ->
         check_bool (v.F.Fleet.device_id ^ " benign accepted") true
           v.F.Fleet.accepted
       | 2 ->
         check_bool (v.F.Fleet.device_id ^ " attack rejected") false
           v.F.Fleet.accepted;
         check_bool (v.F.Fleet.device_id ^ " oob finding") true
           (List.exists
              (fun f ->
                 match f with C.Verifier.Oob_access _ -> true | _ -> false)
              v.F.Fleet.findings)
       | _ ->
         check_bool (v.F.Fleet.device_id ^ " forged log rejected") false
           v.F.Fleet.accepted;
         check_bool (v.F.Fleet.device_id ^ " token finding") true
           (List.exists
              (fun f ->
                 match f with C.Verifier.Bad_token _ -> true | _ -> false)
              v.F.Fleet.findings))
    summary.F.Fleet.verdicts

let test_metrics_aggregation () =
  let built = Lazy.force vuln_built in
  let n = 16 in
  let batch = mixed_batch built n in
  let plan = F.Plan.of_built built in
  let summary = F.Fleet.verify_batch ~domains:3 plan batch in
  let m = summary.F.Fleet.metrics in
  check_int "batch size" n m.F.Metrics.batch_size;
  check_int "accepted + rejected = batch" n
    (m.F.Metrics.accepted + m.F.Metrics.rejected);
  check_int "accepted" (n / 2) m.F.Metrics.accepted;
  check_int "rejects bucketed" m.F.Metrics.rejected
    (List.fold_left (fun acc (_, k) -> acc + k) 0 m.F.Metrics.rejects_by_kind);
  check_bool "oob-access bucket present" true
    (List.mem_assoc "oob-access" m.F.Metrics.rejects_by_kind);
  check_bool "bad-token bucket present" true
    (List.mem_assoc "bad-token" m.F.Metrics.rejects_by_kind);
  check_bool "replay steps counted" true (m.F.Metrics.replay_steps > 0);
  check_bool "wall clock advanced" true (m.F.Metrics.wall_seconds >= 0.0);
  (* the JSON point is well-formed enough to contain every counter *)
  let json = F.Metrics.to_json m in
  check_bool "json has batch" true
    (String.length json > 0 && json.[0] = '{'
     && List.mem_assoc "oob-access" m.F.Metrics.rejects_by_kind)

let test_empty_and_tiny_batches () =
  let built = Lazy.force vuln_built in
  let plan = F.Plan.of_built built in
  let empty = F.Fleet.verify_batch ~domains:4 plan [] in
  check_int "empty batch" 0 (List.length empty.F.Fleet.verdicts);
  check_int "empty batch size" 0 empty.F.Fleet.metrics.F.Metrics.batch_size;
  (* a one-report batch must not spawn three idle domains *)
  let one = F.Fleet.verify_batch ~domains:4 plan (mixed_batch built 1) in
  check_int "single report verified" 1 (List.length one.F.Fleet.verdicts);
  check_int "capped at one domain" 1 one.F.Fleet.metrics.F.Metrics.domains;
  (match F.Fleet.verify_batch ~domains:0 plan [] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "domains=0 accepted")

let test_plan_cache () =
  let cache = F.Plan.cache ~capacity:2 () in
  let pump = Lazy.force vuln_built in
  let sensor = Apps.build Apps.fire_sensor in
  let p1 = F.Plan.find_or_build cache pump in
  let p2 = F.Plan.find_or_build cache pump in
  Alcotest.(check string) "same firmware, same plan" (F.Plan.fingerprint p1)
    (F.Plan.fingerprint p2);
  check_bool "hit recorded" true (fst (F.Plan.cache_stats cache) = 1);
  let p3 = F.Plan.find_or_build cache sensor in
  check_bool "different firmware, different fingerprint" true
    (F.Plan.fingerprint p1 <> F.Plan.fingerprint p3);
  check_int "two plans resident" 2 (F.Plan.cache_size cache);
  (* a distinct device key is a distinct cache entry (and evicts, cap 2) *)
  ignore (F.Plan.find_or_build cache ~key:"other-device-key" pump);
  check_int "capacity respected" 2 (F.Plan.cache_size cache);
  let hits, misses = F.Plan.cache_stats cache in
  check_int "hits" 1 hits;
  check_int "misses" 3 misses

let test_cache_audits_once () =
  (* with ~audit armed, each distinct fingerprint is audited exactly once:
     on its cache miss, never again on hits *)
  let module S = Dialed_staticcheck in
  let audit = S.Audit.default_config in
  let cache = F.Plan.cache () in
  let pump = Lazy.force vuln_built in
  let sensor = Apps.build Apps.fire_sensor in
  let p1 = F.Plan.find_or_build cache ~audit pump in
  (match F.Plan.audit_report p1 with
   | Some r -> check_bool "miss carries a clean audit" true (S.Report.ok r)
   | None -> Alcotest.fail "audited plan carries no report");
  ignore (F.Plan.find_or_build cache ~audit pump);
  ignore (F.Plan.find_or_build cache ~audit sensor);
  ignore (F.Plan.find_or_build cache ~audit sensor);
  ignore (F.Plan.find_or_build cache ~audit pump);
  check_int "two distinct binaries, two audits" 2 (F.Plan.cache_audits cache);
  let hits, misses = F.Plan.cache_stats cache in
  check_int "hits never re-audit" 3 hits;
  check_int "misses" 2 misses;
  (* a hit still hands back the plan with its report attached *)
  match F.Plan.audit_report (F.Plan.find_or_build cache ~audit pump) with
  | Some _ -> ()
  | None -> Alcotest.fail "cached plan lost its audit report"

let test_cached_plan_verifies () =
  (* a plan pulled from the cache must verify exactly like a fresh one *)
  let built = Lazy.force vuln_built in
  let cache = F.Plan.cache () in
  let batch = mixed_batch built 8 in
  let fresh = F.Fleet.verify_batch (F.Plan.of_built built) batch in
  let via_cache =
    F.Fleet.verify_batch (F.Plan.find_or_build cache built) batch
  in
  check_bool "same verdicts via cache" true
    (List.map (fun (v : F.Fleet.verdict) -> (v.F.Fleet.device_id, v.F.Fleet.accepted))
       fresh.F.Fleet.verdicts
     = List.map (fun (v : F.Fleet.verdict) -> (v.F.Fleet.device_id, v.F.Fleet.accepted))
         via_cache.F.Fleet.verdicts)

(* everything a verdict observable carries; equality over this list is
   the fleet engine's determinism contract *)
let verdict_key (v : F.Fleet.verdict) =
  (v.F.Fleet.device_id, v.F.Fleet.accepted, v.F.Fleet.findings,
   v.F.Fleet.replay_steps)

let verdict_keys (s : F.Fleet.summary) =
  List.map verdict_key s.F.Fleet.verdicts

let test_pool_reuse () =
  (* one long-lived pool across several batches: the pooled path (warm
     workers, reused scratch arenas) must match both the strictly serial
     path and the legacy spawn-per-call path, verdict for verdict *)
  let built = Lazy.force vuln_built in
  let plan = F.Plan.of_built built in
  let pool = F.Pool.create ~domains:3 () in
  check_int "pool domains" 3 (F.Pool.domains pool);
  check_int "pool workers" 2 (F.Pool.workers pool);
  List.iter
    (fun n ->
       let batch = mixed_batch built n in
       let serial = F.Fleet.verify_batch ~domains:1 plan batch in
       let spawned = F.Fleet.verify_batch ~domains:3 ~chunk:2 plan batch in
       let pooled = F.Fleet.verify_batch ~pool ~chunk:2 plan batch in
       check_bool
         (Printf.sprintf "batch %d: serial = spawn-per-call" n) true
         (verdict_keys serial = verdict_keys spawned);
       check_bool (Printf.sprintf "batch %d: serial = pooled" n) true
         (verdict_keys serial = verdict_keys pooled))
    [ 12; 16; 8 ];
  F.Pool.shutdown pool;
  F.Pool.shutdown pool;                       (* shutdown is idempotent *)
  match F.Fleet.verify_batch ~pool plan (mixed_batch built 8) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "verify_batch on a shut-down pool accepted"

let test_pool_across_plans () =
  (* the same pool (hence the same per-domain scratch arenas) serves two
     different firmwares back to back: each arena must rebind cleanly,
     with no state leaking from the previous plan's replays *)
  let pump = Lazy.force vuln_built in
  let sensor_run = Apps.run Apps.fire_sensor in
  let sensor = sensor_run.Apps.built in
  let sensor_report =
    A.Device.attest sensor_run.Apps.device ~challenge:"pool-rebind"
  in
  let pump_plan = F.Plan.of_built pump in
  let sensor_plan = F.Plan.of_built sensor in
  let sensor_batch =
    List.init 6 (fun i -> (Printf.sprintf "sensor-%d" i, sensor_report))
  in
  let pump_batch = mixed_batch pump 8 in
  let pool = F.Pool.create ~domains:2 () in
  let fresh_pump = F.Fleet.verify_batch ~domains:1 pump_plan pump_batch in
  let fresh_sensor =
    F.Fleet.verify_batch ~domains:1 sensor_plan sensor_batch
  in
  (* interleave the two firmwares on one pool, twice each *)
  List.iter
    (fun () ->
       let p = F.Fleet.verify_batch ~pool ~chunk:2 pump_plan pump_batch in
       let s = F.Fleet.verify_batch ~pool ~chunk:2 sensor_plan sensor_batch in
       check_bool "pump verdicts survive rebinding" true
         (verdict_keys fresh_pump = verdict_keys p);
       check_bool "sensor verdicts survive rebinding" true
         (verdict_keys fresh_sensor = verdict_keys s);
       check_bool "sensor batch all accepted" true
         (List.for_all (fun (v : F.Fleet.verdict) -> v.F.Fleet.accepted)
            s.F.Fleet.verdicts))
    [ (); () ];
  F.Pool.shutdown pool

let test_stream_matches_batch () =
  let built = Lazy.force vuln_built in
  let plan = F.Plan.of_built built in
  let batch = mixed_batch built 20 in
  let batch_sum = F.Fleet.verify_batch ~domains:1 plan batch in
  (* inline path: a 1-domain stream has no workers, replays run in
     stream_submit itself *)
  let inline = F.Fleet.verify_stream ~domains:1 plan batch in
  check_bool "stream (inline) = batch" true
    (verdict_keys batch_sum = verdict_keys inline);
  (* pooled path, with a window small enough to exercise backpressure *)
  let pool = F.Pool.create ~domains:3 () in
  let streamed = F.Fleet.verify_stream ~pool ~window:4 plan batch in
  check_bool "stream (pooled, window 4) = batch" true
    (verdict_keys batch_sum = verdict_keys streamed);
  check_int "stream batch size" 20
    streamed.F.Fleet.metrics.F.Metrics.batch_size;
  F.Pool.shutdown pool;
  (* poll semantics: verdicts come back in submission order, and close
     returns every verdict including those already polled *)
  let st = F.Fleet.stream ~domains:1 plan in
  let first8 = List.filteri (fun i _ -> i < 8) batch in
  List.iter (fun (id, r) -> F.Fleet.stream_submit st id r) first8;
  check_int "nothing left in flight (inline stream)" 0
    (F.Fleet.stream_pending st);
  let polled = F.Fleet.stream_poll st in
  check_bool "poll returns the in-order prefix" true
    (List.map (fun (v : F.Fleet.verdict) -> v.F.Fleet.device_id) polled
     = List.map fst first8);
  check_int "poll drains" 0 (List.length (F.Fleet.stream_poll st));
  List.iter (fun (id, r) -> F.Fleet.stream_submit st id r)
    (List.filteri (fun i _ -> i >= 8) batch);
  let final = F.Fleet.stream_close st in
  check_bool "close covers polled + unpolled" true
    (verdict_keys batch_sum = verdict_keys final);
  match F.Fleet.stream_submit st "late" (snd (List.hd batch)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit on a closed stream accepted"

let test_stream_next_blocks_and_wakes () =
  let built = Lazy.force vuln_built in
  let plan = F.Plan.of_built built in
  let batch = mixed_batch built 6 in
  (* pooled stream: a consumer thread sleeps in stream_next while the
     submitter feeds reports; every verdict must come out exactly once
     and in submission order *)
  let pool = F.Pool.create ~domains:2 () in
  let st = F.Fleet.stream ~pool ~window:2 plan in
  let out = ref [] in
  let out_m = Mutex.create () in
  let quit = ref false in
  let consumer =
    Thread.create
      (fun () ->
         let rec go () =
           let vs = F.Fleet.stream_next st in
           Mutex.lock out_m;
           out := !out @ vs;
           let stop = !quit && vs = [] in
           Mutex.unlock out_m;
           if not stop then go ()
         in
         go ())
      ()
  in
  List.iter (fun (id, r) -> F.Fleet.stream_submit st id r) batch;
  (* wait for the consumer to drain everything *)
  let rec wait n =
    let drained =
      Mutex.lock out_m;
      let d = List.length !out = List.length batch in
      Mutex.unlock out_m;
      d
    in
    if (not drained) && n > 0 then (Thread.delay 0.01; wait (n - 1))
  in
  wait 500;
  Mutex.lock out_m;
  quit := true;
  Mutex.unlock out_m;
  F.Fleet.stream_wake st;
  Thread.join consumer;
  check_bool "stream_next yields submission order" true
    (List.map (fun (v : F.Fleet.verdict) -> v.F.Fleet.device_id) !out
     = List.map fst batch);
  let final = F.Fleet.stream_close st in
  check_int "close still reports all verdicts" (List.length batch)
    (List.length final.F.Fleet.verdicts);
  F.Pool.shutdown pool

let test_rejects_by_kind_no_finding () =
  (* regression: a rejected verdict with an empty findings list used to
     vanish from the histogram, so the buckets no longer summed to the
     rejected count *)
  let v id accepted findings =
    { F.Fleet.device_id = id; accepted; findings; replay_steps = 0 }
  in
  let verdicts =
    [ v "ok" true [];
      v "bare" false [];
      v "tok" false [ C.Verifier.Bad_token "forged" ];
      v "tok2" false [ C.Verifier.Bad_token "forged"; C.Verifier.Replay_failed "x" ];
      v "bare2" false [] ]
  in
  let hist = F.Fleet.rejects_by_kind verdicts in
  check_int "buckets sum to rejected count" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 hist);
  check_int "findingless rejections bucketed" 2
    (Option.value ~default:0 (List.assoc_opt "no-finding" hist));
  check_int "first finding is the decisive one" 2
    (Option.value ~default:0 (List.assoc_opt "bad-token" hist))

let test_lru_protects_hot_entry () =
  (* FIFO would evict the oldest insertion (the pump) even though it is
     the hot entry; LRU must evict the sensor instead *)
  let cache = F.Plan.cache ~capacity:2 () in
  let pump = Lazy.force vuln_built in
  let sensor = Apps.build Apps.fire_sensor in
  ignore (F.Plan.find_or_build cache pump);      (* miss: insert pump *)
  ignore (F.Plan.find_or_build cache sensor);    (* miss: insert sensor *)
  ignore (F.Plan.find_or_build cache pump);      (* hit: pump is now hot *)
  (* third key forces an eviction; the cold sensor must be the victim *)
  ignore (F.Plan.find_or_build cache ~key:"other-device-key" pump);
  check_int "capacity respected" 2 (F.Plan.cache_size cache);
  ignore (F.Plan.find_or_build cache pump);      (* still resident: hit *)
  let hits, misses = F.Plan.cache_stats cache in
  check_int "hot entry survived eviction" 2 hits;
  check_int "misses so far" 3 misses;
  ignore (F.Plan.find_or_build cache sensor);    (* evicted: a miss again *)
  let hits', misses' = F.Plan.cache_stats cache in
  check_int "cold entry was the victim" 4 misses';
  check_int "no phantom hit" 2 hits'

let test_cache_build_dedup () =
  (* two domains race find_or_build on the same missing key with the
     audit armed: exactly one build (and one audit) must run; the loser
     waits and counts as a hit *)
  let module S = Dialed_staticcheck in
  let audit = S.Audit.default_config in
  let cache = F.Plan.cache () in
  let pump = Lazy.force vuln_built in
  let racer () = F.Plan.find_or_build cache ~audit pump in
  let other = Domain.spawn racer in
  let here = racer () in
  let there = Domain.join other in
  Alcotest.(check string) "both racers got the same plan"
    (F.Plan.fingerprint here) (F.Plan.fingerprint there);
  let hits, misses = F.Plan.cache_stats cache in
  check_int "single build" 1 misses;
  check_int "loser counted as hit" 1 hits;
  check_int "single audit" 1 (F.Plan.cache_audits cache);
  check_int "single resident plan" 1 (F.Plan.cache_size cache)

let test_failed_build_counts_nothing () =
  (* Verifier.plan rejects non-DIALED variants; a build that raises must
     leave the cache empty, count no audit, and not wedge the in-flight
     marker (a retry must attempt a fresh build, not deadlock) *)
  let module S = Dialed_staticcheck in
  let audit = S.Audit.default_config in
  let cache = F.Plan.cache () in
  let cfa_only = Apps.build ~variant:C.Pipeline.Cfa_only Apps.fire_sensor in
  let attempt () =
    match F.Plan.find_or_build cache ~audit cfa_only with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "non-DIALED variant produced a plan"
  in
  attempt ();
  attempt ();                                  (* the key is not wedged *)
  check_int "no audits for failed builds" 0 (F.Plan.cache_audits cache);
  check_int "nothing resident" 0 (F.Plan.cache_size cache);
  let _, misses = F.Plan.cache_stats cache in
  check_int "each attempt was a fresh miss" 2 misses

let suites =
  [ ("fleet",
     [ Alcotest.test_case "determinism across domains" `Quick
         test_determinism_across_domains;
       Alcotest.test_case "mixed batch verdicts" `Quick
         test_mixed_batch_verdicts;
       Alcotest.test_case "metrics aggregation" `Quick
         test_metrics_aggregation;
       Alcotest.test_case "empty and tiny batches" `Quick
         test_empty_and_tiny_batches;
       Alcotest.test_case "plan cache" `Quick test_plan_cache;
       Alcotest.test_case "cache audits once" `Quick test_cache_audits_once;
       Alcotest.test_case "cached plan verifies" `Quick
         test_cached_plan_verifies;
       Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
       Alcotest.test_case "pool rebinds scratch across plans" `Quick
         test_pool_across_plans;
       Alcotest.test_case "stream matches batch" `Quick
         test_stream_matches_batch;
       Alcotest.test_case "stream_next blocks and wakes" `Quick
         test_stream_next_blocks_and_wakes;
       Alcotest.test_case "rejects_by_kind keeps findingless rejects" `Quick
         test_rejects_by_kind_no_finding;
       Alcotest.test_case "LRU protects hot plan" `Quick
         test_lru_protects_hot_entry;
       Alcotest.test_case "concurrent builds dedup" `Quick
         test_cache_build_dedup;
       Alcotest.test_case "failed build counts nothing" `Quick
         test_failed_build_counts_nothing ]) ]
