(* Wire encoding of PoX reports, and the MiniC compound-assignment /
   increment sugar. *)

module M = Dialed_msp430
module A = Dialed_apex
module C = Dialed_core
module Minic = Dialed_minic.Minic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- *)
(* Wire format.                                                    *)

let sample_report () =
  let compiled = Minic.compile "int main(int a) { return a + 1; }" in
  let built =
    C.Pipeline.build ~data:compiled.Minic.data ~op:compiled.Minic.op ()
  in
  let device = C.Pipeline.device built in
  ignore (A.Device.run_operation ~args:[ 4 ] device);
  (built, A.Device.attest device ~challenge:"wire-test-challenge")

let test_wire_roundtrip () =
  let _, report = sample_report () in
  match A.Wire.decode (A.Wire.encode report) with
  | Ok decoded ->
    check_bool "identical" true (decoded = report)
  | Error e -> Alcotest.failf "decode failed: %s" (A.Wire.error_to_string e)

let test_wire_verifies_after_roundtrip () =
  let built, report = sample_report () in
  match A.Wire.decode (A.Wire.encode report) with
  | Ok decoded ->
    let outcome = C.Verifier.verify (C.Verifier.create built) decoded in
    check_bool "still verifies" true outcome.C.Verifier.accepted
  | Error e -> Alcotest.failf "decode failed: %s" (A.Wire.error_to_string e)

let test_wire_rejects_garbage () =
  let expect_error what data =
    match A.Wire.decode data with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect_error "empty" "";
  expect_error "bad magic" "ZZ\001\001";
  expect_error "truncated" "DX\001";
  let _, report = sample_report () in
  let good = A.Wire.encode report in
  expect_error "trailing bytes" (good ^ "x");
  expect_error "cut short" (String.sub good 0 (String.length good - 5));
  (* oversized length field *)
  let bad = Bytes.of_string good in
  Bytes.set bad 4 '\xFF';
  Bytes.set bad 5 '\xFF';
  expect_error "length overflow" (Bytes.to_string bad)

let test_wire_error_causes () =
  (* each rejection carries the specific typed cause, so the gateway can
     count hostile traffic by kind *)
  let _, report = sample_report () in
  let good = A.Wire.encode report in
  let expect what pred data =
    match A.Wire.decode data with
    | Error e when pred e -> ()
    | Error e ->
      Alcotest.failf "%s: wrong cause %s" what (A.Wire.error_to_string e)
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect "empty" (function A.Wire.Short_buffer _ -> true | _ -> false) "";
  expect "bad magic"
    (function A.Wire.Bad_magic -> true | _ -> false)
    ("ZZ" ^ String.sub good 2 (String.length good - 2));
  let v9 = Bytes.of_string good in
  Bytes.set v9 2 '\009';
  expect "version 9"
    (function A.Wire.Unsupported_version 9 -> true | _ -> false)
    (Bytes.to_string v9);
  let bad_exec = Bytes.of_string good in
  Bytes.set bad_exec 3 '\007';
  expect "exec flag 7"
    (function
      | A.Wire.Bad_field { what = "exec flag"; value = 7 } -> true
      | _ -> false)
    (Bytes.to_string bad_exec);
  expect "one trailing byte"
    (function A.Wire.Trailing_garbage { extra = 1 } -> true | _ -> false)
    (good ^ "x");
  expect "three trailing bytes"
    (function A.Wire.Trailing_garbage { extra = 3 } -> true | _ -> false)
    (good ^ "xyz")

let test_wire_all_prefixes_short () =
  (* exhaustive, not sampled: every strict prefix of a valid encoding
     decodes to Short_buffer — never a crash, never another cause *)
  let _, report = sample_report () in
  let good = A.Wire.encode report in
  for cut = 0 to String.length good - 1 do
    match A.Wire.decode (String.sub good 0 cut) with
    | Error (A.Wire.Short_buffer _) -> ()
    | Error e ->
      Alcotest.failf "prefix %d: wrong cause %s" cut
        (A.Wire.error_to_string e)
    | Ok _ -> Alcotest.failf "prefix %d accepted" cut
  done

let test_wire_tamper_detected_downstream () =
  (* bit flips survive parsing but fail verification *)
  let built, report = sample_report () in
  let encoded = Bytes.of_string (A.Wire.encode report) in
  let mid = Bytes.length encoded - 40 in
  Bytes.set encoded mid
    (Char.chr (Char.code (Bytes.get encoded mid) lxor 0x80));
  match A.Wire.decode (Bytes.to_string encoded) with
  | Ok tampered ->
    let outcome = C.Verifier.verify (C.Verifier.create built) tampered in
    check_bool "rejected by token" true (not outcome.C.Verifier.accepted)
  | Error _ -> () (* also acceptable: structural rejection *)

(* ------------------------------------------------------------- *)
(* MiniC sugar.                                                    *)

let eval ?(args = []) source =
  let compiled = Minic.compile source in
  let built =
    C.Pipeline.build ~variant:C.Pipeline.Unmodified ~data:compiled.Minic.data
      ~op:compiled.Minic.op ()
  in
  let device = C.Pipeline.device built in
  let result = A.Device.run_operation ~args device in
  check_bool "completed" true result.A.Device.completed;
  M.Cpu.get_reg (A.Device.cpu device) 15

let test_compound_assign () =
  check_int "+=" 15 (eval "int main() { int a = 5; a += 10; return a; }");
  check_int "-=" 2 (eval "int main() { int a = 5; a -= 3; return a; }");
  check_int "*=" 20 (eval "int main() { int a = 5; a *= 4; return a; }");
  check_int "/=" 5 (eval "int main() { int a = 20; a /= 4; return a; }");
  check_int "%=" 2 (eval "int main() { int a = 17; a %= 5; return a; }");
  check_int "&=" 4 (eval "int main() { int a = 12; a &= 6; return a; }");
  check_int "|=" 14 (eval "int main() { int a = 12; a |= 6; return a; }");
  check_int "^=" 10 (eval "int main() { int a = 12; a ^= 6; return a; }");
  check_int "<<=" 40 (eval "int main() { int a = 5; a <<= 3; return a; }");
  check_int ">>=" 5 (eval "int main() { int a = 40; a >>= 3; return a; }")

let test_incr_decr () =
  check_int "++" 6 (eval "int main() { int a = 5; a++; return a; }");
  check_int "--" 4 (eval "int main() { int a = 5; a--; return a; }");
  check_int "for with ++" 45
    (eval "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }")

let test_array_compound () =
  check_int "t[i] +=" 12
    (eval "int t[4] = {10, 0, 0, 0}; int main() { t[0] += 2; return t[0]; }");
  check_int "t[i]++" 11
    (eval "int t[4] = {10, 0, 0, 0}; int main() { t[0]++; return t[0]; }");
  check_int "global +=" 9
    (eval "int g = 4; int main() { g += 5; return g; }")

let test_sugar_on_io () =
  (* compound ops on an io register: read-modify-write *)
  let source =
    {| volatile char P3OUT @ 0x0019;
       int main() { P3OUT = 3; P3OUT |= 4; return P3OUT; } |}
  in
  check_int "io |=" 7 (eval source)

let suites =
  [ ("wire",
     [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
       Alcotest.test_case "verifies after roundtrip" `Quick test_wire_verifies_after_roundtrip;
       Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
       Alcotest.test_case "typed error causes" `Quick test_wire_error_causes;
       Alcotest.test_case "all strict prefixes short" `Quick
         test_wire_all_prefixes_short;
       Alcotest.test_case "tamper detected" `Quick test_wire_tamper_detected_downstream ]);
    ("minic-sugar",
     [ Alcotest.test_case "compound assignment" `Quick test_compound_assign;
       Alcotest.test_case "increment/decrement" `Quick test_incr_decr;
       Alcotest.test_case "array compound" `Quick test_array_compound;
       Alcotest.test_case "io compound" `Quick test_sugar_on_io ]) ]
